package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// accuracyResponse mirrors the envelope fields the accuracy tests assert
// on.
type accuracyResponse struct {
	Results []json.RawMessage `json:"results"`
	Batch   struct {
		CacheHits       int            `json:"cache_hits"`
		CacheMisses     int            `json:"cache_misses"`
		Degraded        bool           `json:"degraded"`
		DegradedActions []string       `json:"degraded_actions"`
		Backends        map[string]int `json:"backends"`
		Accuracies      map[string]int `json:"accuracies"`
		Fallbacks       []string       `json:"backend_fallbacks"`
	} `json:"batch"`
}

func decodeAccuracy(t *testing.T, body []byte) accuracyResponse {
	t.Helper()
	var resp accuracyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	return resp
}

// accuracyOf pulls the accuracy class out of a raw result.
func accuracyOf(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var res struct {
		Error    string `json:"error"`
		Accuracy string `json:"accuracy"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatalf("scenario failed: %s", res.Error)
	}
	return res.Accuracy
}

// TestTransactionAccuracyServed drives the estimator tier through the
// wire format: the result reports its accuracy class, the envelope and
// counters account the estimator run, and the two accuracy classes never
// share a cache entry.
func TestTransactionAccuracyServed(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	spec := scenarioJSON("tiered", 4000, 7)

	first := post(h, `{"accuracy":"transaction","scenarios":[`+spec+`]}`)
	if first.Code != http.StatusOK {
		t.Fatalf("transaction request: status %d, body %s", first.Code, first.Body.String())
	}
	r1 := decodeAccuracy(t, first.Body.Bytes())
	if got := accuracyOf(t, r1.Results[0]); got != "transaction" {
		t.Errorf("result accuracy = %q, want transaction", got)
	}
	if r1.Batch.Accuracies["transaction"] != 1 || r1.Batch.Backends["tlm"] != 1 {
		t.Errorf("envelope accuracies=%v backends=%v, want transaction:1 on tlm",
			r1.Batch.Accuracies, r1.Batch.Backends)
	}
	if s.ctr.backendTLMRuns.Value() != 1 {
		t.Errorf("backend_tlm_runs = %d, want 1", s.ctr.backendTLMRuns.Value())
	}

	// The exact same scenario at cycle accuracy is a different result:
	// it must miss the cache and come back with different bytes.
	second := post(h, `{"accuracy":"cycle","scenarios":[`+spec+`]}`)
	r2 := decodeAccuracy(t, second.Body.Bytes())
	if r2.Batch.CacheMisses != 1 || r2.Batch.CacheHits != 0 {
		t.Fatalf("cycle request after transaction run: hits=%d misses=%d, want 0/1 (cache classes leaked)",
			r2.Batch.CacheHits, r2.Batch.CacheMisses)
	}
	if got := accuracyOf(t, r2.Results[0]); got != "cycle" {
		t.Errorf("cycle result accuracy = %q", got)
	}
	if string(r1.Results[0]) == string(r2.Results[0]) {
		t.Error("transaction and cycle results are byte-identical; the estimate should differ")
	}

	// Repeating the transaction request hits its own cache entry,
	// byte-identically.
	third := post(h, `{"accuracy":"transaction","scenarios":[`+spec+`]}`)
	r3 := decodeAccuracy(t, third.Body.Bytes())
	if r3.Batch.CacheHits != 1 {
		t.Fatalf("transaction replay: hits=%d, want 1", r3.Batch.CacheHits)
	}
	if string(r1.Results[0]) != string(r3.Results[0]) {
		t.Error("cached transaction result not byte-identical")
	}
}

// TestAccuracyResolutionChain pins the scenario → request → server
// default resolution, mirroring the backend chain.
func TestAccuracyResolutionChain(t *testing.T) {
	s := New(Config{Workers: 2, DefaultAccuracy: "transaction"})
	h := s.Handler()

	// No accuracy anywhere: the server default wins.
	rr := post(h, `{"scenarios":[`+scenarioJSON("srv-default", 4000, 3)+`]}`)
	r1 := decodeAccuracy(t, rr.Body.Bytes())
	if got := accuracyOf(t, r1.Results[0]); got != "transaction" {
		t.Errorf("server default ignored: accuracy = %q, want transaction", got)
	}

	// A scenario-level "cycle" overrides both the request and the server.
	body := `{"accuracy":"transaction","scenarios":[{"name":"exact","cycles":2000,"accuracy":"cycle",` +
		`"workloads":[{"seed":4,"sequences":3,"pairs_min":2,"pairs_max":6,"idle_min":2,"idle_max":8,"addr_size":4096}]}]}`
	rr2 := post(h, body)
	r2 := decodeAccuracy(t, rr2.Body.Bytes())
	if got := accuracyOf(t, r2.Results[0]); got != "cycle" {
		t.Errorf("scenario override ignored: accuracy = %q, want cycle", got)
	}

	// Unknown accuracy names are rejected at decode, wherever they appear.
	for _, bad := range []string{
		`{"accuracy":"burst","scenarios":[` + scenarioJSON("x", 100, 1) + `]}`,
		`{"scenarios":[{"name":"x","cycles":100,"accuracy":"burst"}]}`,
	} {
		if rr := post(h, bad); rr.Code != http.StatusBadRequest {
			t.Errorf("bad accuracy accepted: status %d for %s", rr.Code, bad)
		}
	}
}

// TestAccuracyFallbackServed posts a transaction-accuracy scenario the
// estimator cannot honor (an active fault plan): it must run
// cycle-accurate with the reason in the envelope and the fallback
// counters bumped.
func TestAccuracyFallbackServed(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	body := `{"accuracy":"transaction","scenarios":[{"name":"faulted","cycles":2000,
		"faults":{"seed":5,"rules":[{"kind":"waits","slave":-1,"master":-1,"prob":0.001}]},
		"workloads":[{"seed":9,"sequences":4,"pairs_min":2,"pairs_max":6,"idle_min":2,"idle_max":8,"addr_size":4096}]}]}`

	rr := post(h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeAccuracy(t, rr.Body.Bytes())
	if got := accuracyOf(t, resp.Results[0]); got != "cycle" {
		t.Errorf("faulted scenario accuracy = %q, want conservative cycle", got)
	}
	if resp.Batch.Accuracies["cycle"] != 1 || resp.Batch.Backends["tlm"] != 0 {
		t.Errorf("envelope accuracies=%v backends=%v, want cycle:1 off the estimator",
			resp.Batch.Accuracies, resp.Batch.Backends)
	}
	if len(resp.Batch.Fallbacks) != 1 ||
		!strings.Contains(resp.Batch.Fallbacks[0], "transaction accuracy:") {
		t.Errorf("fallbacks = %v, want one transaction-accuracy reason", resp.Batch.Fallbacks)
	}
	if s.ctr.accuracyFallbacks.Value() != 1 {
		t.Errorf("accuracy_fallbacks = %d, want 1", s.ctr.accuracyFallbacks.Value())
	}
}

// TestDegradedModeEstimates opts the server into the estimate-degrade
// action and forces pressure: eligible cycle scenarios are downgraded to
// transaction accuracy, re-keyed into the estimate cache class, and the
// envelope + counters report the downgrade.
func TestDegradedModeEstimates(t *testing.T) {
	s := New(Config{Workers: 2, DegradeEstimate: true})
	s.degradeHook = func() bool { return true }
	h := s.Handler()
	spec := scenarioJSON("squeezed", 4000, 13)

	rr := post(h, `{"scenarios":[`+spec+`]}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeAccuracy(t, rr.Body.Bytes())
	if !resp.Batch.Degraded || !hasAction(resp.Batch.DegradedActions, "estimated_transaction_accuracy:1") {
		t.Fatalf("degraded=%v actions=%v, want the estimate action", resp.Batch.Degraded, resp.Batch.DegradedActions)
	}
	if got := accuracyOf(t, resp.Results[0]); got != "transaction" {
		t.Errorf("downgraded scenario accuracy = %q, want transaction", got)
	}
	if s.ctr.degradedEstimated.Value() != 1 {
		t.Errorf("degraded_estimated = %d, want 1", s.ctr.degradedEstimated.Value())
	}

	// The downgraded run cached under the transaction key: an explicit
	// transaction request for the same scenario hits it byte-identically
	// once pressure clears...
	s.degradeHook = func() bool { return false }
	hit := decodeAccuracy(t, post(h, `{"accuracy":"transaction","scenarios":[`+spec+`]}`).Body.Bytes())
	if hit.Batch.CacheHits != 1 {
		t.Errorf("transaction twin of downgraded run: hits=%d, want 1 (re-keying broken?)", hit.Batch.CacheHits)
	}
	if string(resp.Results[0]) != string(hit.Results[0]) {
		t.Error("downgraded bytes differ from the explicit transaction run")
	}
	// ...while a cycle request still computes the exact answer fresh.
	exact := decodeAccuracy(t, post(h, `{"scenarios":[`+spec+`]}`).Body.Bytes())
	if exact.Batch.CacheMisses != 1 {
		t.Errorf("cycle request after downgrade: misses=%d, want 1 (estimate answered an exact request)", exact.Batch.CacheMisses)
	}

	// Without the opt-in, pressure alone never swaps estimates in.
	s2 := New(Config{Workers: 2})
	s2.degradeHook = func() bool { return true }
	resp2 := decodeAccuracy(t, post(s2.Handler(), `{"scenarios":[`+spec+`]}`).Body.Bytes())
	if got := accuracyOf(t, resp2.Results[0]); got != "cycle" {
		t.Errorf("estimate ran without the DegradeEstimate opt-in: accuracy = %q", got)
	}
	if hasAction(resp2.Batch.DegradedActions, "estimated_transaction_accuracy") {
		t.Errorf("actions %v carry the estimate marker without the opt-in", resp2.Batch.DegradedActions)
	}
}

// TestErroredLaneRunsNotCounted pins the lane-accounting fix: an errored
// lane-pack member still carries Backend="lanes" and the pack occupancy
// in its Result, and it must not feed the backend_lane_runs /
// lane_occupancy counters the occupancy average is derived from — only
// its healthy packmate counts.
func TestErroredLaneRunsNotCounted(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()

	// Two structurally identical lanes scenarios pack together; the broken
	// workload range errors one member while its packmate completes.
	bad := `{"name":"lane-bad","cycles":2000,"backend":"lanes",
		"workloads":[{"seed":1,"sequences":3,"pairs_min":6,"pairs_max":2,"addr_size":4096}]}`
	rr := post(h, `{"backend":"lanes","scenarios":[`+bad+`,`+scenarioJSON("lane-rider", 2000, 2)+`]}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeAccuracy(t, rr.Body.Bytes())
	var res wireResult
	if err := json.Unmarshal(resp.Results[0], &res); err != nil || res.Error == "" {
		t.Fatalf("broken-workload scenario should error, got %s", resp.Results[0])
	}
	// Exactly one member completed: one lane run, its pack occupancy —
	// not the 2 runs / occupancy 4 the errored member would add back.
	if runs, occ := s.ctr.backendLaneRuns.Value(), s.ctr.laneOccupancy.Value(); runs != 1 || occ != 2 {
		t.Errorf("pack with an errored member: runs=%d occupancy=%d, want 1/2 (errored lane counted?)", runs, occ)
	}

	// A healthy pack afterwards keeps the average honest: 3 runs total,
	// occupancy 6.
	specs := scenarioJSON("lane-a", 2000, 7) + `,` + scenarioJSON("lane-b", 1500, 8)
	post(h, `{"backend":"lanes","scenarios":[`+specs+`]}`)
	if runs, occ := s.ctr.backendLaneRuns.Value(), s.ctr.laneOccupancy.Value(); runs != 3 || occ != 6 {
		t.Errorf("healthy pack after errored one: runs=%d occupancy=%d, want 3/6", runs, occ)
	}
}

// TestRetryAfterAtLeastOne pins the backpressure-advice clamp: whatever
// the (unsynchronized) waiting gauge reads, Retry-After must never reach
// a client as 0 — zero-delay advice turns polite clients into spinners.
func TestRetryAfterAtLeastOne(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 2, MaxQueue: 8})
	cases := []struct {
		waiting int64
		want    int
	}{
		{0, 1},
		{8, 5},
		{-1, 1}, // transient under-read while the queue drains
		{-64, 1},
	}
	for _, c := range cases {
		s.waiting.Store(c.waiting)
		if got := s.retryAfter(); got != c.want {
			t.Errorf("retryAfter() with waiting=%d = %d, want %d", c.waiting, got, c.want)
		}
		if got := s.retryAfter(); got < 1 {
			t.Errorf("retryAfter() with waiting=%d = %d; the advice must stay >= 1", c.waiting, got)
		}
	}
}
