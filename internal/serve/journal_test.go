package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ahbpower/internal/engine"
)

// metricInt reads one counter out of the server's metrics JSON.
func metricInt(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(s.MetricsJSON()), &m); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	raw, ok := m[name]
	if !ok {
		t.Fatalf("metric %q not exported", name)
	}
	var v int64
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("metric %q: %v", name, err)
	}
	return v
}

func mustOpen(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// pollJob polls an async job until it reaches a terminal status.
func pollJob(t *testing.T, h http.Handler, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rr := get(h, "/v1/jobs/"+id)
		if rr.Code != http.StatusOK {
			t.Fatalf("job %s: status %d, body %s", id, rr.Code, rr.Body.String())
		}
		var st JobStatus
		if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
		if st.Status == JobDone || st.Status == JobCancelled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStateDirRoundTrip runs an async batch to completion on a state
// dir, restarts the server on the same dir, and asserts the finished job
// is still queryable with its original result bytes and that the same
// scenario answers from the disk cache tier byte-identically.
func TestStateDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	body := `{"async":true,"scenarios":[` + scenarioJSON("durable", 2000, 7) + `]}`

	s1 := mustOpen(t, Config{Workers: 2, StateDir: dir})
	h1 := s1.Handler()
	rr := post(h1, body)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("async post: status %d, body %s", rr.Code, rr.Body.String())
	}
	var acc map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &acc); err != nil {
		t.Fatalf("decoding 202: %v", err)
	}
	id := acc["job_id"]
	st1 := pollJob(t, h1, id)
	if st1.Status != JobDone {
		t.Fatalf("job finished %q, want done", st1.Status)
	}
	s1.Drain(time.Second)

	if ents, err := os.ReadDir(filepath.Join(dir, "results")); err != nil || len(ents) == 0 {
		t.Fatalf("no disk-cached results after drain (err=%v)", err)
	}

	// Restart: the retired job must answer under its original id with the
	// same result bytes, without re-running anything.
	s2 := mustOpen(t, Config{Workers: 2, StateDir: dir})
	h2 := s2.Handler()
	if n := metricInt(t, s2, "jobs_recovered"); n != 0 {
		t.Errorf("jobs_recovered = %d after clean shutdown, want 0", n)
	}
	st2 := pollJob(t, h2, id)
	if st2.Status != JobDone || st2.Response == nil || st1.Response == nil {
		t.Fatalf("restored job: %+v", st2)
	}
	if string(st1.Response.Results[0]) != string(st2.Response.Results[0]) {
		t.Errorf("restored job response differs:\nbefore: %s\nafter:  %s",
			st1.Response.Results[0], st2.Response.Results[0])
	}

	// A fresh sync request for the same scenario must hit the disk tier.
	sync := post(h2, `{"scenarios":[`+scenarioJSON("durable", 2000, 7)+`]}`)
	r := decodeRun(t, sync)
	if r.Batch.CacheHits != 1 {
		t.Fatalf("restarted server: cache hits = %d, want 1 (from disk)", r.Batch.CacheHits)
	}
	if n := metricInt(t, s2, "disk_cache_hits"); n != 1 {
		t.Errorf("disk_cache_hits = %d, want 1", n)
	}
	if string(r.Results[0]) != string(st1.Response.Results[0]) {
		t.Errorf("disk-cached result differs from the original run:\n%s\n%s",
			r.Results[0], st1.Response.Results[0])
	}
	s2.Drain(time.Second)
}

// TestCrashRecoveryResumesJob emulates a crash: an "accepted" journal
// entry with no retirement, plus a mid-run checkpoint a dead process
// left behind. Opening a server on that state dir must re-admit the job
// under its original id, resume the scenario from the checkpoint, and
// produce result bytes identical to an uninterrupted run.
func TestCrashRecoveryResumesJob(t *testing.T) {
	const spec = `{"async":true,"scenarios":[{"name":"crashy","cycles":3000,"workloads":[{"seed":9,"sequences":3,"pairs_min":2,"pairs_max":6,"idle_min":2,"idle_max":8,"addr_size":4096}]}]}`
	var req RunRequest
	if err := json.Unmarshal([]byte(spec), &req); err != nil {
		t.Fatalf("decoding request: %v", err)
	}
	sc, err := req.Scenarios[0].Scenario(0)
	if err != nil {
		t.Fatalf("resolving scenario: %v", err)
	}
	key, ok := sc.CanonicalKey()
	if !ok {
		t.Fatal("scenario not cacheable")
	}

	// The uninterrupted control result, via a stateless server (same
	// marshaling path).
	ctl := New(Config{Workers: 2})
	ctlResp := decodeRun(t, post(ctl.Handler(), `{"scenarios":[`+spec[len(`{"async":true,"scenarios":[`):]))
	if len(ctlResp.Results) != 1 {
		t.Fatalf("control: %d results", len(ctlResp.Results))
	}

	// Capture a genuine mid-run checkpoint the way a crashed daemon would
	// have persisted one.
	var blob []byte
	var at uint64
	stop := errors.New("captured")
	crash := sc
	crash.Checkpoint = &engine.CheckpointConfig{Every: 512, Save: func(cycle uint64, snapshot []byte) error {
		blob, at = snapshot, cycle
		return stop
	}}
	if res := engine.RunOne(context.Background(), crash); res.Err == nil || !errors.Is(res.Err, stop) {
		t.Fatalf("checkpoint capture run: %v", res.Err)
	}
	if at == 0 || at >= sc.Cycles {
		t.Fatalf("checkpoint at cycle %d of %d", at, sc.Cycles)
	}

	// Forge the dead daemon's state dir: journal with an unretired
	// acceptance, checkpoint on disk, no cached result.
	dir := t.TempDir()
	st, err := openState(dir)
	if err != nil {
		t.Fatalf("openState: %v", err)
	}
	if err := st.append(journalEntry{T: journalAccepted, Job: "job-000007", Req: &req}); err != nil {
		t.Fatalf("journal: %v", err)
	}
	if err := st.storeCheckpoint(key, blob); err != nil {
		t.Fatalf("storeCheckpoint: %v", err)
	}
	st.close()

	s := mustOpen(t, Config{Workers: 2, StateDir: dir, CheckpointEvery: 512})
	h := s.Handler()
	if n := metricInt(t, s, "jobs_recovered"); n != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", n)
	}
	stDone := pollJob(t, h, "job-000007")
	if stDone.Status != JobDone || stDone.Response == nil {
		t.Fatalf("recovered job: %+v", stDone)
	}
	if string(stDone.Response.Results[0]) != string(ctlResp.Results[0]) {
		t.Errorf("recovered result differs from uninterrupted control:\ngot  %s\nwant %s",
			stDone.Response.Results[0], ctlResp.Results[0])
	}
	if n := metricInt(t, s, "scenarios_resumed"); n != 1 {
		t.Errorf("scenarios_resumed = %d, want 1", n)
	}
	// The superseded checkpoint is gone, the result is on disk, and the
	// next id never collides with the recovered one.
	if _, err := os.Stat(st.checkpointPath(key)); !os.IsNotExist(err) {
		t.Errorf("checkpoint not dropped after completion (err=%v)", err)
	}
	if j := s.jobs.create(1); j.id != "job-000008" {
		t.Errorf("next id after recovery = %s, want job-000008", j.id)
	}
	s.Drain(time.Second)
}

// TestDrainJournalsCancelledJob pins the drain satellite: a SIGTERM-style
// drain that interrupts an async job must journal the cancelled terminal
// state, so a restarted daemon reports the job cancelled instead of
// silently re-running it.
func TestDrainJournalsCancelledJob(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Config{Workers: 1, StateDir: dir})
	h1 := s1.Handler()
	rr := post(h1, `{"async":true,"timeout_ms":60000,"scenarios":[`+scenarioJSON("drainy", 40_000_000, 3)+`]}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("async post: status %d, body %s", rr.Code, rr.Body.String())
	}
	var acc map[string]string
	_ = json.Unmarshal(rr.Body.Bytes(), &acc)
	s1.Drain(0) // no grace: cancel the in-flight job immediately

	s2 := mustOpen(t, Config{Workers: 1, StateDir: dir})
	if n := metricInt(t, s2, "jobs_recovered"); n != 0 {
		t.Errorf("jobs_recovered = %d, want 0 (drain journaled the retirement)", n)
	}
	st := pollJob(t, s2.Handler(), acc["job_id"])
	if st.Status != JobCancelled {
		t.Errorf("restored job status %q, want cancelled", st.Status)
	}
	s2.Drain(time.Second)
}

// TestJournalReplayIdempotent folds the same journal content twice (as
// if two daemon lifetimes re-journaled the same job) and asserts replay
// still yields exactly one job in its terminal state.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, err := openState(dir)
	if err != nil {
		t.Fatalf("openState: %v", err)
	}
	req := &RunRequest{}
	_ = json.Unmarshal([]byte(`{"scenarios":[`+scenarioJSON("idem", 1000, 1)+`]}`), req)
	resp := json.RawMessage(`{"results":[]}`)
	for i := 0; i < 2; i++ { // the same lifetime twice
		if err := st.append(journalEntry{T: journalAccepted, Job: "job-000003", Req: req}); err != nil {
			t.Fatalf("journal: %v", err)
		}
		if err := st.append(journalEntry{T: journalRetired, Job: "job-000003", Status: JobDone, Response: resp}); err != nil {
			t.Fatalf("journal: %v", err)
		}
	}
	// Plus a torn final line, as a crash mid-append would leave.
	st.mu.Lock()
	st.f.WriteString(`{"t":"accepted","job":"job-0000`)
	st.mu.Unlock()
	rs, err := st.replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(rs.pending) != 0 || len(rs.finished) != 1 {
		t.Fatalf("replay: %d pending, %d finished; want 0/1", len(rs.pending), len(rs.finished))
	}
	if rs.finished[0].id != "job-000003" || rs.finished[0].status != JobDone || rs.finished[0].total != 1 {
		t.Errorf("replayed job: %+v", rs.finished[0])
	}
	if rs.next != 3 {
		t.Errorf("replayed next = %d, want 3", rs.next)
	}
	st.close()
}
