package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Job states.
const (
	JobQueued    = "queued"    // admitted, waiting for a runner slot
	JobRunning   = "running"   // executing on the runner
	JobDone      = "done"      // finished; Response holds the batch result
	JobCancelled = "cancelled" // cancelled before or during execution; partial results kept
)

// job is one asynchronous batch. The response of a finished job — even
// one cancelled mid-flight by a deadline or drain — is the same
// RunResponse a synchronous request would have returned, so completed
// scenarios are never dropped.
type job struct {
	id     string
	total  int
	status atomic.Value // string
	// completed counts scenarios that finished executing (hooked into
	// the runner), readable while the job is mid-flight.
	completed atomic.Int64

	mu       sync.Mutex
	response []byte // marshaled RunResponse, set exactly once
	done     chan struct{}
}

func (j *job) finish(status string, response []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return // already finished
	default:
	}
	j.status.Store(status)
	j.response = response
	close(j.done)
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	// Response is the finished batch, present once Status is done or
	// cancelled.
	Response *RunResponse `json:"response,omitempty"`
}

// jobRegistry tracks async jobs by id. Finished jobs are retained up to
// a bounded count and evicted oldest-first — the registry of a draining
// daemon must not grow without bound.
type jobRegistry struct {
	mu       sync.Mutex
	next     uint64
	jobs     map[string]*job
	finished []string // finish order, for eviction
	maxKeep  int
}

func newJobRegistry(maxKeep int) *jobRegistry {
	if maxKeep < 1 {
		maxKeep = 1
	}
	return &jobRegistry{jobs: map[string]*job{}, maxKeep: maxKeep}
}

// create registers a new queued job for a batch of total scenarios.
func (r *jobRegistry) create(total int) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	j := &job{id: fmt.Sprintf("job-%06d", r.next), total: total, done: make(chan struct{})}
	j.status.Store(JobQueued)
	r.jobs[j.id] = j
	return j
}

// get looks a job up by id.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// retire records a finished job for bounded retention, evicting the
// oldest finished jobs beyond the cap.
func (r *jobRegistry) retire(j *job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = append(r.finished, j.id)
	for len(r.finished) > r.maxKeep {
		evict := r.finished[0]
		r.finished = r.finished[1:]
		delete(r.jobs, evict)
	}
}

// setNext raises the id counter so a registry restored from a journal
// never reissues an id the journal already used.
func (r *jobRegistry) setNext(n uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.next {
		r.next = n
	}
}

// restore re-registers a journaled job under its original id,
// idempotently: restoring an id that already exists returns the existing
// job untouched, which is what makes journal replay safe to repeat.
func (r *jobRegistry) restore(id string, total int) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		return j
	}
	if n, ok := jobNumber(id); ok && n > r.next {
		r.next = n
	}
	j := &job{id: id, total: total, done: make(chan struct{})}
	j.status.Store(JobQueued)
	r.jobs[id] = j
	return j
}

// restoreFinished re-registers a journaled terminal job with its
// original status and response, already finished and subject to the same
// bounded retention as a job that finished in this process.
func (r *jobRegistry) restoreFinished(id, status string, response []byte, total int) *job {
	j := r.restore(id, total)
	if status == JobDone {
		j.completed.Store(int64(total))
	}
	j.finish(status, response)
	r.retire(j)
	return j
}
