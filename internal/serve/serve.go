package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/tlm"
	"ahbpower/internal/topo"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Workers is the engine worker-pool size per batch; default
	// runtime.GOMAXPROCS(0) so a container CPU quota is respected.
	Workers int
	// MaxConcurrent bounds how many batches execute at once; default 2.
	// Each batch already parallelizes across Workers, so a small number
	// of concurrent batches saturates the pool without thrashing.
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for a batch
	// slot; beyond it the server answers 503 with Retry-After
	// (backpressure instead of unbounded memory growth). Fully cached
	// batches bypass the queue entirely. Default 256.
	MaxQueue int
	// CacheEntries bounds the content-addressed result cache; 0 means
	// the default 4096, negative disables caching.
	CacheEntries int
	// MaxScenarios bounds the batch size of one request; default 1024.
	MaxScenarios int
	// MaxCycles bounds the per-scenario cycle count; default 50M. An
	// admission-time guard: a request that would pin a worker for
	// minutes is rejected up front, not cancelled halfway.
	MaxCycles uint64
	// MaxBodyBytes bounds the request body; default 16 MB.
	MaxBodyBytes int64
	// DefaultTimeout and MaxTimeout bound the per-request deadline
	// (defaults 60s and 10m). A request's timeout_ms is clamped to
	// MaxTimeout; 0 selects DefaultTimeout.
	DefaultTimeout, MaxTimeout time.Duration
	// JobsKeep bounds how many finished async jobs stay queryable;
	// default 256.
	JobsKeep int
	// DegradeAt is the queue-pressure fraction (waiting / MaxQueue) at
	// which the server enters degraded mode: trace-heavy analyzer options
	// are shed and still-valid cached results may be served even for
	// no_cache requests, with the degradation reported in the response
	// envelope. 0 selects the default 0.75; negative disables degradation.
	DegradeAt float64
	// Retry is the engine retry policy applied to every batch (transient
	// injected failures re-attempted with capped exponential backoff).
	// A zero MaxAttempts selects the default (2 attempts, 25ms → 250ms,
	// ±20% jitter); a negative MaxAttempts disables retries.
	Retry engine.RetryPolicy
	// DefaultBackend is the execution backend applied to scenarios whose
	// request carries no backend of its own: "" or "event" (the default),
	// "compiled", "lanes" (bit-parallel packs, scheduled by the runner),
	// or "auto" (compiled when supported, event otherwise).
	// Purely an execution policy — results and cache keys are identical
	// across backends. The name must be valid (exec.ValidName); requests
	// resolved against an unknown default are rejected at decode time, and
	// cmd/ahbserved validates its flag at startup.
	DefaultBackend string
	// DefaultAccuracy is the accuracy class applied to scenarios whose
	// request carries none of its own: "" or "cycle" (exact, the default)
	// or "transaction" (calibrated transaction-level estimate — cheaper
	// tier, approximate by contract). Unlike DefaultBackend, accuracy
	// changes the computed result and is part of the cache key, so cycle
	// and transaction results never answer each other. Validated like the
	// backend (engine.ValidAccuracy).
	DefaultAccuracy string
	// StateDir, when non-empty, makes the daemon crash-safe: async job
	// lifecycle events are written to an fsynced write-ahead journal under
	// the directory, completed scenario results gain a content-addressed
	// disk tier, and in-progress scenarios persist periodic checkpoints.
	// A server opened on the same directory after a crash replays the
	// journal — finished jobs answer byte-identically from disk, and
	// interrupted jobs are re-admitted and resumed from their latest
	// checkpoints. Empty (the default) keeps all state in memory.
	StateDir string
	// CheckpointEvery is the minimum number of simulated cycles between
	// persisted checkpoints of an in-progress scenario; it only takes
	// effect with a StateDir. 0 disables checkpointing (results and the
	// journal stay durable; an interrupted scenario restarts from cycle
	// 0 on recovery).
	CheckpointEvery uint64
	// DegradeEstimate, when true, adds the transaction-level estimator to
	// the degraded-mode playbook: under queue pressure, eligible
	// cycle-accuracy scenarios are downgraded to transaction accuracy —
	// an estimate instead of a shed — with the action surfaced in the
	// response envelope. Off by default: degraded responses change
	// numerically when estimates stand in for exact results, so operators
	// must opt in.
	DegradeEstimate bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.MaxScenarios <= 0 {
		c.MaxScenarios = 1024
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.JobsKeep <= 0 {
		c.JobsKeep = 256
	}
	if c.DegradeAt == 0 {
		c.DegradeAt = 0.75
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = engine.RetryPolicy{MaxAttempts: 2, BaseBackoff: 25 * time.Millisecond,
			MaxBackoff: 250 * time.Millisecond, Jitter: 0.2}
	} else if c.Retry.MaxAttempts < 0 {
		c.Retry = engine.RetryPolicy{}
	}
	return c
}

// Server serves scenario batches over HTTP on top of engine.Runner. Use
// New, mount Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg   Config
	cache *cache
	jobs  *jobRegistry
	// state is the durable journal + disk cache + checkpoint store; nil
	// without Config.StateDir.
	state *stateStore

	// slots is the batch-execution semaphore; waiting counts requests
	// blocked in admission (the bounded queue).
	slots   chan struct{}
	waiting atomic.Int64

	// draining flags that no new work is accepted; runCtx is cancelled
	// when in-flight runs must stop (drain grace expired).
	draining   atomic.Bool
	runCtx     context.Context
	cancelRuns context.CancelFunc
	inflight   sync.WaitGroup

	ctr  counters
	vars *expvar.Map

	// degradeHook overrides the queue-pressure signal in tests; nil means
	// the real degradedNow.
	degradeHook func() bool
}

// counters are the expvar-exported serving metrics.
type counters struct {
	requests         expvar.Int // POST /v1/run requests accepted for processing
	badRequests      expvar.Int
	rejectedBusy     expvar.Int // 503: admission queue full
	rejectedDraining expvar.Int // 503: draining
	batches          expvar.Int // batches executed to completion
	scenariosRun     expvar.Int
	scenariosFailed  expvar.Int
	cacheHits        expvar.Int
	cacheMisses      expvar.Int
	jobsCreated      expvar.Int
	latencySum       expvar.Float // seconds, completed batches
	latencyCount     expvar.Int
	running          expvar.Int // gauge: batches executing
	queued           expvar.Int // gauge: requests waiting for a slot
	cacheSize        expvar.Int // gauge

	degradedBatches     expvar.Int // batches that ran in degraded mode
	degradedTraceShed   expvar.Int // scenarios whose trace options were shed
	degradedCacheServed expvar.Int // cache hits served despite no_cache
	degradedEstimated   expvar.Int // scenarios downgraded to transaction accuracy under pressure
	scenariosRetried    expvar.Int // scenarios that needed >1 attempt

	backendEventRuns    expvar.Int // scenarios executed on the event backend
	backendCompiledRuns expvar.Int // scenarios executed on the compiled backend
	backendLaneRuns     expvar.Int // scenarios executed on the bit-parallel lane backend
	backendTLMRuns      expvar.Int // scenarios estimated by the transaction-level fast path
	laneOccupancy       expvar.Int // summed pack occupancy of lane runs (avg = lane_occupancy / backend_lane_runs)
	backendFallbacks    expvar.Int // compiled/auto/lanes requests that fell back to event
	accuracyFallbacks   expvar.Int // transaction requests that conservatively ran cycle-accurate

	validateRequests expvar.Int // POST /v1/validate requests
	validateRejects  expvar.Int // validate requests with at least one invalid scenario

	checkpointsSaved    expvar.Int // scenario snapshots persisted to the state dir
	scenariosResumed    expvar.Int // scenarios resumed from a persisted checkpoint
	checkpointFallbacks expvar.Int // scenarios that could not checkpoint (reason surfaced)
	journalErrors       expvar.Int // best-effort state-dir writes that failed
	jobsRecovered       expvar.Int // interrupted jobs re-admitted by journal replay
	diskCacheHits       expvar.Int // results served from the disk cache tier
}

// New builds a server from a configuration without durable state. It is
// Open minus the error return — construction without a StateDir cannot
// fail — and panics if given a StateDir whose recovery fails; daemons
// that configure one should call Open.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a server from the configuration. With a Config.StateDir it
// also opens the write-ahead journal and replays it: jobs retired by a
// previous process become queryable again with their original responses,
// and jobs a crash interrupted are re-admitted — their completed
// scenarios answer from the disk cache, and interrupted long scenarios
// resume from their latest persisted checkpoints.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newCache(cfg.CacheEntries),
		jobs:  newJobRegistry(cfg.JobsKeep),
		slots: make(chan struct{}, cfg.MaxConcurrent),
	}
	s.runCtx, s.cancelRuns = context.WithCancel(context.Background())
	s.vars = new(expvar.Map).Init()
	for name, v := range map[string]expvar.Var{
		"requests_total":    &s.ctr.requests,
		"bad_requests":      &s.ctr.badRequests,
		"rejected_busy":     &s.ctr.rejectedBusy,
		"rejected_draining": &s.ctr.rejectedDraining,
		"batches_total":     &s.ctr.batches,
		"scenarios_run":     &s.ctr.scenariosRun,
		"scenarios_failed":  &s.ctr.scenariosFailed,
		"cache_hits":        &s.ctr.cacheHits,
		"cache_misses":      &s.ctr.cacheMisses,
		"jobs_created":      &s.ctr.jobsCreated,
		"latency_sum_s":     &s.ctr.latencySum,
		"latency_count":     &s.ctr.latencyCount,
		"batches_running":   &s.ctr.running,
		"queue_waiting":     &s.ctr.queued,
		"cache_size":        &s.ctr.cacheSize,

		"degraded_batches":      &s.ctr.degradedBatches,
		"degraded_trace_shed":   &s.ctr.degradedTraceShed,
		"degraded_cache_served": &s.ctr.degradedCacheServed,
		"degraded_estimated":    &s.ctr.degradedEstimated,
		"scenarios_retried":     &s.ctr.scenariosRetried,

		"backend_event_runs":    &s.ctr.backendEventRuns,
		"backend_compiled_runs": &s.ctr.backendCompiledRuns,
		"backend_lane_runs":     &s.ctr.backendLaneRuns,
		"backend_tlm_runs":      &s.ctr.backendTLMRuns,
		"lane_occupancy":        &s.ctr.laneOccupancy,
		"backend_fallbacks":     &s.ctr.backendFallbacks,
		"accuracy_fallbacks":    &s.ctr.accuracyFallbacks,

		"validate_requests": &s.ctr.validateRequests,
		"validate_rejects":  &s.ctr.validateRejects,

		"checkpoints_saved":    &s.ctr.checkpointsSaved,
		"scenarios_resumed":    &s.ctr.scenariosResumed,
		"checkpoint_fallbacks": &s.ctr.checkpointFallbacks,
		"journal_errors":       &s.ctr.journalErrors,
		"jobs_recovered":       &s.ctr.jobsRecovered,
		"disk_cache_hits":      &s.ctr.diskCacheHits,
	} {
		s.vars.Set(name, v)
	}
	if cfg.StateDir != "" {
		st, err := openState(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		s.state = st
		rs, err := st.replay()
		if err != nil {
			st.close()
			return nil, err
		}
		s.jobs.setNext(rs.next)
		for _, fj := range rs.finished {
			s.jobs.restoreFinished(fj.id, fj.status, fj.response, fj.total)
		}
		for _, pj := range rs.pending {
			s.recoverJob(pj.id, pj.req)
		}
	}
	return s, nil
}

// recoverJob re-admits one journaled-but-unretired job: the request is
// resolved exactly as at original admission (so cache keys match the
// scenario entries the crashed process journaled) and executed under
// this process's lifetime, keeping its original id so clients polling
// across the restart see the same job complete. The acceptance is not
// re-journaled — replay folds by id, so the original entry still covers
// it. A request the current configuration no longer admits (limits
// tightened between runs) is retired cancelled with the rejection as its
// response.
func (s *Server) recoverJob(id string, req *RunRequest) {
	scenarios, keys, err := s.resolveRequest(req)
	if err != nil {
		j := s.jobs.restore(id, 0)
		b, _ := json.Marshal(errorWire(err))
		j.finish(JobCancelled, b)
		s.journalRetired(id, JobCancelled, b)
		s.jobs.retire(j)
		return
	}
	j := s.jobs.restore(id, len(scenarios))
	s.ctr.jobsRecovered.Add(1)
	s.runJobAsync(j, req, scenarios, keys)
}

// Handler returns the HTTP API:
//
//	POST /v1/run        run a scenario batch (async with {"async": true})
//	POST /v1/validate   dry-run decode + ERC validation, no admission/run
//	GET  /v1/jobs/{id}  poll an async job
//	GET  /healthz       liveness/readiness (503 while draining)
//	GET  /metrics       serving counters (expvar JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/validate", s.handleValidate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops accepting new requests, lets in-flight batches finish for
// up to grace, then cancels whatever is still running and waits for it
// to unwind. Batches cancelled by the drain still record their partial
// results (completed scenarios are never dropped), and async jobs stay
// queryable until the process exits. Safe to call more than once.
func (s *Server) Drain(grace time.Duration) {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
		case <-time.After(grace):
		}
	}
	// Cancel stragglers (and release admission waiters), then wait: a
	// cancelled run stops at the next cycle-slice boundary. Every job
	// journals its terminal state before releasing its inflight slot, so
	// once the wait returns the journal is complete and safe to close.
	s.cancelRuns()
	<-done
	if s.state != nil {
		s.state.close()
	}
}

// MetricsJSON renders the serving counters as the same JSON body
// /metrics serves — the drain-time flush target for the daemon's log.
func (s *Server) MetricsJSON() string {
	s.syncGauges()
	return s.vars.String()
}

func (s *Server) syncGauges() {
	s.ctr.queued.Set(s.waiting.Load())
	s.ctr.cacheSize.Set(int64(s.cache.size()))
}

var (
	errBusy     = errors.New("serve: admission queue full")
	errDraining = errors.New("serve: draining")
)

// degradedNow reports whether new batches should run in degraded mode:
// the admission queue has filled past the configured pressure fraction.
func (s *Server) degradedNow() bool {
	if s.degradeHook != nil {
		return s.degradeHook()
	}
	if s.cfg.DegradeAt < 0 {
		return false
	}
	return float64(s.waiting.Load()) >= s.cfg.DegradeAt*float64(s.cfg.MaxQueue)
}

// acquire admits one batch: it waits for an execution slot unless the
// bounded queue is full, the server is draining, or ctx ends first. On
// success the returned release function must be called when the batch
// finishes.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		return nil, errBusy
	}
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	case <-s.runCtx.Done():
		return nil, errDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// timeout resolves a request's deadline from its timeout_ms.
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// decodeRun parses and validates a run request into engine scenarios and
// their canonical cache keys ("" = uncacheable).
func (s *Server) decodeRun(r *http.Request) (*RunRequest, []engine.Scenario, []string, error) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, fmt.Errorf("decoding request: %w", err)
	}
	scenarios, keys, err := s.resolveRequest(&req)
	if err != nil {
		return nil, nil, nil, err
	}
	return &req, scenarios, keys, nil
}

// resolveRequest validates an already-decoded request and resolves it
// into engine scenarios and canonical cache keys. It is deterministic in
// (request, config), which is what lets journal replay re-resolve a
// recovered job to the same scenarios and keys its first admission
// computed.
func (s *Server) resolveRequest(req *RunRequest) ([]engine.Scenario, []string, error) {
	if len(req.Scenarios) == 0 {
		return nil, nil, errors.New("request has no scenarios")
	}
	if len(req.Scenarios) > s.cfg.MaxScenarios {
		return nil, nil, fmt.Errorf("request has %d scenarios, limit %d", len(req.Scenarios), s.cfg.MaxScenarios)
	}
	if !exec.ValidName(req.Backend) {
		return nil, nil, fmt.Errorf("unknown backend %q (want event|compiled|lanes|auto)", req.Backend)
	}
	if !engine.ValidAccuracy(req.Accuracy) {
		return nil, nil, fmt.Errorf("unknown accuracy %q (want cycle|transaction)", req.Accuracy)
	}
	scenarios := make([]engine.Scenario, len(req.Scenarios))
	keys := make([]string, len(req.Scenarios))
	for i := range req.Scenarios {
		sc, err := req.Scenarios[i].Scenario(i)
		if err != nil {
			return nil, nil, err
		}
		if sc.Cycles > s.cfg.MaxCycles {
			return nil, nil, fmt.Errorf("scenario %q: %d cycles exceeds the per-scenario limit %d", sc.Name, sc.Cycles, s.cfg.MaxCycles)
		}
		// Backend resolution: scenario hint, then request default, then
		// server default. Deliberately after CanonicalKey-relevant fields
		// are settled — the hint never affects the key.
		if sc.Backend == "" {
			sc.Backend = req.Backend
		}
		if sc.Backend == "" {
			sc.Backend = s.cfg.DefaultBackend
		}
		if !exec.ValidName(sc.Backend) {
			return nil, nil, fmt.Errorf("scenario %q: unknown backend %q (want event|compiled|lanes|auto)", sc.Name, sc.Backend)
		}
		// Accuracy resolution mirrors the backend chain — scenario, then
		// request, then server default — but must settle *before* the key
		// is computed: accuracy is part of the result identity.
		if sc.Accuracy == "" {
			sc.Accuracy = req.Accuracy
		}
		if sc.Accuracy == "" {
			sc.Accuracy = s.cfg.DefaultAccuracy
		}
		if !engine.ValidAccuracy(sc.Accuracy) {
			return nil, nil, fmt.Errorf("scenario %q: unknown accuracy %q (want cycle|transaction)", sc.Name, sc.Accuracy)
		}
		scenarios[i] = sc
		keys[i], _ = sc.CanonicalKey()
	}
	return scenarios, keys, nil
}

// handleRun serves POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reject(w, &s.ctr.rejectedDraining, "server is draining")
		return
	}
	req, scenarios, keys, err := s.decodeRun(r)
	if err != nil {
		s.ctr.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorWire(err))
		return
	}
	s.ctr.requests.Add(1)
	if req.Async {
		s.startJob(w, req, scenarios, keys)
		return
	}

	// Merge the request context with the server's run context so a drain
	// cancels in-flight synchronous batches too.
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	stop := context.AfterFunc(s.runCtx, cancel)
	defer stop()

	s.inflight.Add(1)
	defer s.inflight.Done()
	resp, err := s.runBatch(ctx, scenarios, keys, req.NoCache, nil)
	if err != nil {
		// The batch needed the runner but was never admitted: 503 with
		// backpressure advice, body still carrying any cache hits plus
		// the admission error per unexecuted scenario.
		s.rejectAcquire(w, err, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorWire folds a decode-time rejection into the structured 400 body:
// ERC rejections carry their typed findings, other errors just the
// message.
func errorWire(err error) ErrorWire {
	ew := ErrorWire{Error: err.Error()}
	var ve *topo.ValidationError
	if errors.As(err, &ve) {
		ew.Erc = ve.Errors
		ew.Warnings = ve.Warnings
	}
	return ew
}

// handleValidate serves POST /v1/validate: the dry-run path of the same
// decode + ERC validation /v1/run performs before admission, reported
// per scenario without consuming a queue slot or executing anything.
// The report itself answers 200 whether or not the scenarios validate;
// only an undecodable body is a 400.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.ctr.validateRequests.Add(1)
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.ctr.badRequests.Add(1)
		s.ctr.validateRejects.Add(1)
		writeJSON(w, http.StatusBadRequest, errorWire(fmt.Errorf("decoding request: %w", err)))
		return
	}
	if len(req.Scenarios) == 0 {
		s.ctr.badRequests.Add(1)
		s.ctr.validateRejects.Add(1)
		writeJSON(w, http.StatusBadRequest, errorWire(errors.New("request has no scenarios")))
		return
	}
	resp := ValidateResponse{Valid: true}
	for i := range req.Scenarios {
		sc, err := req.Scenarios[i].Scenario(i)
		vr := ValidateResult{Name: sc.Name}
		if err == nil {
			vr.Valid = true
			// A clean decode can still carry advisory findings (address-map
			// gaps, odd clock periods predicting backend fallback).
			_, vr.Warnings = topo.Validate(sc.Topology())
			vr.Key, _ = sc.CanonicalKey()
		} else {
			resp.Valid = false
			vr.Error = err.Error()
			var ve *topo.ValidationError
			if errors.As(err, &ve) {
				vr.Errors = ve.Errors
				vr.Warnings = ve.Warnings
			}
		}
		resp.Results = append(resp.Results, vr)
	}
	if !resp.Valid {
		s.ctr.validateRejects.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// startJob answers an async run: 202 with a job id, batch execution in
// the background under the server's (not the request's) lifetime. With a
// state dir the acceptance hits the journal before the 202 leaves — once
// a client holds a job id, no crash can lose the job.
func (s *Server) startJob(w http.ResponseWriter, req *RunRequest, scenarios []engine.Scenario, keys []string) {
	j := s.jobs.create(len(scenarios))
	s.ctr.jobsCreated.Add(1)
	if s.state != nil {
		if err := s.state.append(journalEntry{T: journalAccepted, Job: j.id, Req: req}); err != nil {
			s.ctr.journalErrors.Add(1)
		}
	}
	s.runJobAsync(j, req, scenarios, keys)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"job_id": j.id,
		"status": JobQueued,
		"url":    "/v1/jobs/" + j.id,
	})
}

// runJobAsync executes one async job in the background: the shared tail
// of a fresh admission and a journal-replay recovery. The terminal state
// — done or cancelled, drain included — is journaled before the job's
// inflight slot is released, so a drained daemon's journal always agrees
// with what its clients were told.
func (s *Server) runJobAsync(j *job, req *RunRequest, scenarios []engine.Scenario, keys []string) {
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		defer s.jobs.retire(j)
		ctx, cancel := context.WithTimeout(s.runCtx, s.timeout(req.TimeoutMS))
		defer cancel()
		j.status.Store(JobRunning)
		resp, err := s.runBatch(ctx, scenarios, keys, req.NoCache, func(engine.Result) {
			j.completed.Add(1)
		})
		b, _ := json.Marshal(resp)
		status := JobDone
		if err != nil || ctx.Err() != nil {
			status = JobCancelled
		}
		j.finish(status, b)
		s.journalRetired(j.id, status, b)
	}()
}

// journalRetired records a job's terminal state, best-effort.
func (s *Server) journalRetired(id, status string, response []byte) {
	if s.state == nil {
		return
	}
	if err := s.state.append(journalEntry{T: journalRetired, Job: id, Status: status, Response: response}); err != nil {
		s.ctr.journalErrors.Add(1)
	}
}

// cacheGet reads the content-addressed result cache through both tiers:
// memory first, then the state dir, promoting disk hits into memory.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if b, ok := s.cache.get(key); ok {
		return b, true
	}
	if s.state != nil {
		if b, ok := s.state.loadResult(key); ok {
			s.ctr.diskCacheHits.Add(1)
			s.cache.put(key, b)
			return b, true
		}
	}
	return nil, false
}

// cachePut stores a fresh result in both tiers, journals the scenario
// completion, and drops the scenario's now-superseded checkpoint. State
// writes are best-effort: the response already holds the result.
func (s *Server) cachePut(key string, b []byte) {
	s.cache.put(key, b)
	if s.state == nil {
		return
	}
	if err := s.state.storeResult(key, b); err != nil {
		s.ctr.journalErrors.Add(1)
	} else if err := s.state.append(journalEntry{T: journalScenario, Key: key}); err != nil {
		s.ctr.journalErrors.Add(1)
	}
	s.state.dropCheckpoint(key)
}

// attachCheckpoint arms crash-safe snapshots on one cacheable cache
// miss: as it runs, the scenario persists its latest kernel snapshot
// under its canonical key, and it picks up whatever snapshot a crashed
// predecessor left there — the resumed tail is Float64bits-identical to
// a from-scratch run, so the cached result is too. Saving is best-effort
// (a state-dir write failure is counted, never fatal). Lane and
// transaction-accuracy hints run unarmed rather than forcing a backend
// fallback just to snapshot, as do checkpoint-ineligible analyzer
// configurations.
func (s *Server) attachCheckpoint(sc *engine.Scenario, key string) {
	if s.state == nil || s.cfg.CheckpointEvery == 0 || key == "" {
		return
	}
	if sc.Backend == exec.NameLanes || engine.NormalizeAccuracy(sc.Accuracy) == engine.AccuracyTransaction {
		return
	}
	st := s.state
	sc.Checkpoint = &engine.CheckpointConfig{
		Every: s.cfg.CheckpointEvery,
		Save: func(cycle uint64, snapshot []byte) error {
			if err := st.storeCheckpoint(key, snapshot); err != nil {
				s.ctr.journalErrors.Add(1)
				return nil
			}
			s.ctr.checkpointsSaved.Add(1)
			return nil
		},
		Resume: st.loadCheckpoint(key),
	}
	if sc.CheckpointUnsupported() != "" {
		sc.Checkpoint = nil
		s.ctr.checkpointFallbacks.Add(1)
	}
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	st := JobStatus{
		ID:        j.id,
		Status:    j.status.Load().(string),
		Total:     j.total,
		Completed: int(j.completed.Load()),
	}
	j.mu.Lock()
	raw := j.response
	j.mu.Unlock()
	if raw != nil {
		var resp RunResponse
		if err := json.Unmarshal(raw, &resp); err == nil {
			st.Response = &resp
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.syncGauges()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.vars.String())
}

// runBatch is the shared execution path of sync requests and async
// jobs: resolve cache hits, admit the batch only if anything actually
// needs the runner (a fully cached batch never occupies a slot), run
// the misses, marshal and cache the fresh results, and assemble the
// response in input order. A non-nil error means the batch needed the
// runner and was never admitted (queue full, draining, or ctx ended
// while queued); the response then carries the cache hits plus one
// admission error per unexecuted scenario.
func (s *Server) runBatch(ctx context.Context, scenarios []engine.Scenario, keys []string, noCache bool, onDone func(engine.Result)) (RunResponse, error) {
	start := time.Now()

	results := make([]json.RawMessage, len(scenarios))
	var resp RunResponse

	// Degraded mode: under queue pressure the batch sheds load it is
	// allowed to shed — trace-heavy analyzer options are dropped (the
	// energy answer is unchanged; only optional instrumentation goes) and
	// still-valid cached results are served even when the request said
	// no_cache. With Config.DegradeEstimate, eligible cycle-accuracy
	// scenarios are additionally downgraded to the transaction-level
	// estimate: an approximate answer instead of a shed or a long queue
	// wait. Every action is reported in the response envelope.
	degraded := s.degradedNow()
	cacheOverride := false
	if degraded {
		s.ctr.degradedBatches.Add(1)
		resp.Batch.Degraded = true
		shed := 0
		for i := range scenarios {
			sc := &scenarios[i]
			if !sc.SkipAnalyzer && (sc.Analyzer.RecordActivity || sc.Analyzer.TraceWindow > 0) {
				sc.Analyzer.RecordActivity = false
				sc.Analyzer.TraceWindow = 0
				keys[i], _ = sc.CanonicalKey() // re-key: the shed scenario is what runs
				shed++
			}
		}
		if shed > 0 {
			s.ctr.degradedTraceShed.Add(int64(shed))
			resp.Batch.DegradedActions = append(resp.Batch.DegradedActions,
				fmt.Sprintf("shed_trace_options:%d", shed))
		}
		if s.cfg.DegradeEstimate {
			estimated := 0
			for i := range scenarios {
				sc := &scenarios[i]
				if engine.NormalizeAccuracy(sc.Accuracy) != engine.AccuracyCycle {
					continue
				}
				if sc.TLMTraits().Unsupported() != "" {
					continue // would only fall back to the exact path anyway
				}
				sc.Accuracy = engine.AccuracyTransaction
				keys[i], _ = sc.CanonicalKey() // re-key: estimates are their own cache class
				estimated++
			}
			if estimated > 0 {
				s.ctr.degradedEstimated.Add(int64(estimated))
				resp.Batch.DegradedActions = append(resp.Batch.DegradedActions,
					fmt.Sprintf("estimated_transaction_accuracy:%d", estimated))
			}
		}
		if noCache {
			noCache = false
			cacheOverride = true
			resp.Batch.DegradedActions = append(resp.Batch.DegradedActions, "served_from_cache_despite_no_cache")
		}
	}

	var missIdx []int
	for i := range scenarios {
		if keys[i] == "" {
			resp.Batch.Uncacheable++
			missIdx = append(missIdx, i)
			continue
		}
		if !noCache {
			if b, ok := s.cacheGet(keys[i]); ok {
				s.ctr.cacheHits.Add(1)
				resp.Batch.CacheHits++
				if cacheOverride {
					s.ctr.degradedCacheServed.Add(1)
				}
				results[i] = b
				if onDone != nil {
					onDone(engine.Result{Index: i, Scenario: scenarios[i]})
				}
				continue
			}
		}
		s.ctr.cacheMisses.Add(1)
		resp.Batch.CacheMisses++
		missIdx = append(missIdx, i)
	}

	var admissionErr error
	if len(missIdx) > 0 {
		release, err := s.acquire(ctx)
		if err != nil {
			admissionErr = err
			resp.Batch.Failed = len(missIdx)
			for _, i := range missIdx {
				b, _ := json.Marshal(ResultWire{Name: scenarios[i].Name, Key: keys[i], Error: err.Error()})
				results[i] = b
			}
		} else {
			s.ctr.running.Add(1)
			miss := make([]engine.Scenario, len(missIdx))
			for n, i := range missIdx {
				miss[n] = scenarios[i]
				s.attachCheckpoint(&miss[n], keys[i])
			}
			runner := engine.NewRunner(s.cfg.Workers)
			runner.OnDone = onDone
			runner.Retry = s.cfg.Retry
			res, batch := runner.RunMetered(ctx, miss)
			release()
			s.ctr.running.Add(-1)
			resp.Batch.BatchMetricsWire = batch.Wire()
			for n := range res {
				if res[n].Attempts > 1 {
					s.ctr.scenariosRetried.Add(1)
				}
				if res[n].ResumedFrom > 0 {
					s.ctr.scenariosResumed.Add(1)
				}
				if res[n].CheckpointFallback != "" {
					s.ctr.checkpointFallbacks.Add(1)
				}
				// Backend accounting counts completed runs only: a lane-pack
				// member that errored (or a pack whose build failed) still
				// carries Backend="lanes" and the pack occupancy in its
				// Result, and counting those would skew the
				// lane_occupancy / backend_lane_runs average the dashboards
				// derive.
				if res[n].Err == nil {
					switch res[n].Backend {
					case exec.NameEvent:
						s.ctr.backendEventRuns.Add(1)
					case exec.NameCompiled:
						s.ctr.backendCompiledRuns.Add(1)
					case exec.NameLanes:
						s.ctr.backendLaneRuns.Add(1)
						s.ctr.laneOccupancy.Add(int64(res[n].Lanes))
					case tlm.Name:
						s.ctr.backendTLMRuns.Add(1)
					}
				}
				if res[n].Backend != "" {
					if resp.Batch.Backends == nil {
						resp.Batch.Backends = map[string]int{}
					}
					resp.Batch.Backends[res[n].Backend]++
				}
				if ac := res[n].Accuracy; ac != "" {
					if resp.Batch.Accuracies == nil {
						resp.Batch.Accuracies = map[string]int{}
					}
					resp.Batch.Accuracies[ac]++
				}
				if fb := res[n].BackendFallback; fb != "" {
					s.ctr.backendFallbacks.Add(1)
					if strings.HasPrefix(fb, "transaction accuracy:") {
						s.ctr.accuracyFallbacks.Add(1)
					}
					resp.Batch.BackendFallbacks = append(resp.Batch.BackendFallbacks,
						fmt.Sprintf("%s: %s", res[n].Scenario.Name, fb))
				}
			}
			for n, i := range missIdx {
				b, err := json.Marshal(resultWire(&res[n], keys[i]))
				if err != nil {
					// Marshaling plain data cannot fail; keep the
					// scenario's slot valid regardless.
					b, _ = json.Marshal(ResultWire{Name: scenarios[i].Name, Error: err.Error()})
				}
				results[i] = b
				s.ctr.scenariosRun.Add(1)
				if res[n].Err != nil {
					s.ctr.scenariosFailed.Add(1)
				} else if keys[i] != "" {
					s.cachePut(keys[i], b)
				}
			}
		}
	}
	resp.Results = results
	resp.Batch.Scenarios = len(scenarios)
	if admissionErr == nil {
		s.ctr.batches.Add(1)
		s.ctr.latencySum.Add(time.Since(start).Seconds())
		s.ctr.latencyCount.Add(1)
	}
	return resp, admissionErr
}

// retryAfter derives the Retry-After advice from queue pressure: an
// empty queue clears in about a batch, a full one in several. The result
// is clamped to ≥1 second no matter what the waiting gauge reads — it is
// sampled unsynchronized and can transiently under-read while the queue
// drains mid-request, and a 0 (or negative) advice turns well-behaved
// clients into zero-delay retry spinners.
func (s *Server) retryAfter() int {
	after := 1 + int(s.waiting.Load())/max(1, s.cfg.MaxConcurrent)
	if after < 1 {
		after = 1
	}
	return after
}

// reject answers 503 with backpressure advice.
func (s *Server) reject(w http.ResponseWriter, ctr *expvar.Int, msg string) {
	ctr.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": msg})
}

// rejectAcquire answers a failed admission with 503 + Retry-After; the
// body is the batch response runBatch assembled (cache hits intact, the
// admission error on every scenario that never ran).
func (s *Server) rejectAcquire(w http.ResponseWriter, err error, resp RunResponse) {
	switch {
	case errors.Is(err, errBusy):
		s.ctr.rejectedBusy.Add(1)
	case errors.Is(err, errDraining):
		s.ctr.rejectedDraining.Add(1)
		// Otherwise the request's own context ended while queued (client
		// gone or deadline spent waiting).
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode here
}
