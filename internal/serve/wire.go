// Package serve exposes the batch run engine as a long-lived HTTP
// service: scenario batches come in as JSON, run on the shared
// engine.Runner under admission control and per-request deadlines, and
// results stream back either synchronously or through async jobs. The
// daemon entry point is cmd/ahbserved.
//
// The serving layer leans on two properties the lower layers guarantee:
// runs are deterministic (an isolated kernel and seeded workloads per
// scenario, so a cached result is byte-identical to a fresh one) and
// cancellable (context propagation into the simulation loop, so a
// deadline or drain stops mid-flight with completed scenarios intact).
package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// RunRequest is the body of POST /v1/run: one scenario batch.
type RunRequest struct {
	// Scenarios is the batch, executed with the engine's deterministic
	// ordering guarantees. Required, non-empty.
	Scenarios []ScenarioSpec `json:"scenarios"`
	// Async, when true, enqueues the batch as a job and returns 202 with
	// a job id instead of blocking until completion.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds the batch's run time in milliseconds; the server
	// clamps it to its configured maximum and applies its default when 0.
	// On expiry the batch is cancelled mid-flight and completed scenarios
	// are still returned (the unfinished ones carry the deadline error).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request (results are
	// still stored for later hits).
	NoCache bool `json:"no_cache,omitempty"`
	// Backend is the request-level execution-backend default
	// ("event"|"compiled"|"lanes"|"auto") applied to every scenario that
	// does not
	// carry its own; empty defers to the server's configured default. An
	// execution hint only: results and cache keys are identical across
	// backends, so requests with different backends share cache entries.
	Backend string `json:"backend,omitempty"`
	// Accuracy is the request-level accuracy-class default
	// ("cycle"|"transaction") applied to every scenario that does not
	// carry its own; empty defers to the server's configured default.
	// Unlike Backend this changes the computed result — "transaction"
	// selects the calibrated transaction-level estimate, the daemon's
	// cheap tier — and is part of the cache key, so the two classes never
	// answer each other.
	Accuracy string `json:"accuracy,omitempty"`
}

// ScenarioSpec is the wire form of one engine.Scenario.
type ScenarioSpec struct {
	Name string `json:"name"`
	// System is the count-based legacy description of the bus shape;
	// omitted (with no Topology either) means the paper's testbench
	// (2 masters + default master + 3 slaves @ 100 MHz). It remains fully
	// supported as an alias that canonicalizes into the same topology form
	// — prefer Topology, which can also express non-uniform address maps,
	// per-slave wait mixes and per-master workload hints. Mutually
	// exclusive with Topology.
	System *SystemSpec `json:"system,omitempty"`
	// Topology is the declarative description of the bus shape (see
	// internal/topo): masters in priority order, slaves with explicit
	// address regions and per-slave wait states, arbitration policy, clock
	// and data width. It passes the ERC compliance pass at decode time —
	// before admission — and rejections come back as structured 400 bodies
	// carrying typed rule codes. A topology and the count-based system it
	// canonicalizes from share one cache key.
	Topology *topo.Topology `json:"topology,omitempty"`
	// Analyzer parameterizes the power analyzer; omitted means the global
	// style with default technology constants.
	Analyzer *AnalyzerSpec `json:"analyzer,omitempty"`
	// SkipAnalyzer runs without power instrumentation.
	SkipAnalyzer bool `json:"skip_analyzer,omitempty"`
	// Workloads supplies per-master traffic; omitted means the paper
	// workload sized to Cycles.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Cycles is the number of bus clock cycles to simulate. Required.
	Cycles uint64 `json:"cycles"`
	// Faults is an optional deterministic fault-injection plan (see
	// internal/fault). Plans participate in the canonical cache key, so
	// faulty runs cache like clean ones.
	Faults *fault.Plan `json:"faults,omitempty"`
	// Backend selects this scenario's execution backend
	// ("event"|"compiled"|"lanes"|"auto"); empty defers to the
	// request-level and then the server-level default. Not part of the
	// cache key. "lanes" scenarios sharing one bus structure are packed
	// into bit-parallel executions by the engine's runner.
	Backend string `json:"backend,omitempty"`
	// Accuracy selects this scenario's accuracy class
	// ("cycle"|"transaction"); empty defers to the request-level and then
	// the server-level default. Part of the cache key: transaction
	// estimates are approximate by contract and cache separately from
	// exact results. Scenarios the estimator cannot honor (fault plans,
	// per-cycle traces, ...) conservatively run cycle-accurate with the
	// reason surfaced in the result's backend_fallback.
	Accuracy string `json:"accuracy,omitempty"`
}

// SystemSpec is the wire form of core.SystemConfig: the count-based
// legacy shape description, kept as a fully supported alias of the
// declarative "topology" object (both decode through the same
// canonicalization, so they build identical systems and share cache
// keys). New clients should send "topology" instead. RegionSize maps
// into the canonical address map (slave i owns [i*size, (i+1)*size)) and
// non-1 KB-multiple sizes are rejected by the ERC pass with a structured
// E_REGION_1KB error.
type SystemSpec struct {
	Masters int `json:"masters"`
	// DefaultMaster adds the paper's simple default master; omitted
	// defaults to true.
	DefaultMaster *bool  `json:"default_master,omitempty"`
	Slaves        int    `json:"slaves"`
	SlaveWaits    int    `json:"slave_waits,omitempty"`
	ClockPeriodPS uint64 `json:"clock_period_ps,omitempty"` // default 10000 (100 MHz)
	DataWidth     int    `json:"data_width,omitempty"`      // default 32
	Policy        string `json:"policy,omitempty"`          // sticky|fixed|rr, default sticky
	RegionSize    uint32 `json:"slave_region_size,omitempty"`
}

// AnalyzerSpec is the wire form of core.AnalyzerConfig.
type AnalyzerSpec struct {
	Style string    `json:"style,omitempty"` // global|local|private, default global
	Tech  *TechSpec `json:"tech,omitempty"`
	// TraceWindow enables windowed power-trace recording with the given
	// window in seconds. Trace recording is a degradable option: under
	// queue pressure the server may shed it (see BatchWire.Degraded).
	TraceWindow    float64  `json:"trace_window_s,omitempty"`
	RecordActivity bool     `json:"record_activity,omitempty"`
	DPM            *DPMSpec `json:"dpm,omitempty"`
}

// TechSpec overrides the technology constants.
type TechSpec struct {
	VDD float64 `json:"vdd_V"`
	CPD float64 `json:"cpd_F"`
	CO  float64 `json:"co_F"`
}

// DPMSpec enables the dynamic-power-management estimator.
type DPMSpec struct {
	IdleThreshold int     `json:"idle_threshold"`
	WakeEnergy    float64 `json:"wake_energy_J"`
}

// WorkloadSpec is the wire form of workload.Config.
type WorkloadSpec struct {
	Seed           int64  `json:"seed"`
	NumSequences   int    `json:"sequences"`
	PairsMin       int    `json:"pairs_min"`
	PairsMax       int    `json:"pairs_max"`
	IdleMin        int    `json:"idle_min"`
	IdleMax        int    `json:"idle_max"`
	AddrBase       uint32 `json:"addr_base"`
	AddrSize       uint32 `json:"addr_size"`
	LocalityWindow uint32 `json:"locality_window,omitempty"`
	Pattern        string `json:"pattern,omitempty"` // random|low-activity|counter
	BurstBeats     int    `json:"burst_beats,omitempty"`
}

// parsePattern maps a wire pattern name to its value, accepting the
// historical "low_activity" spelling on top of workload.ParsePattern.
func parsePattern(s string) (workload.Pattern, error) {
	n := strings.ToLower(strings.TrimSpace(s))
	if n == "low_activity" {
		n = "low-activity"
	}
	return workload.ParsePattern(n)
}

// parseStyle maps a wire style name to its value.
func parseStyle(s string) (core.Style, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "global":
		return core.StyleGlobal, nil
	case "local":
		return core.StyleLocal, nil
	case "private":
		return core.StylePrivate, nil
	}
	return 0, fmt.Errorf("unknown analyzer style %q (want global|local|private)", s)
}

// Scenario converts the spec into an engine scenario. It only validates
// what the wire layer itself defines (enumerations, required fields);
// structural validation stays in core/workload, whose errors come back
// per scenario in the result.
func (s *ScenarioSpec) Scenario(index int) (engine.Scenario, error) {
	sc := engine.Scenario{Name: s.Name, Cycles: s.Cycles, SkipAnalyzer: s.SkipAnalyzer}
	if sc.Name == "" {
		sc.Name = fmt.Sprintf("scenario-%d", index)
	}
	if s.Cycles == 0 {
		return sc, fmt.Errorf("scenario %q: cycles must be positive", sc.Name)
	}
	if !exec.ValidName(s.Backend) {
		return sc, fmt.Errorf("scenario %q: unknown backend %q (want event|compiled|lanes|auto)", sc.Name, s.Backend)
	}
	sc.Backend = s.Backend
	if !engine.ValidAccuracy(s.Accuracy) {
		return sc, fmt.Errorf("scenario %q: unknown accuracy %q (want cycle|transaction)", sc.Name, s.Accuracy)
	}
	sc.Accuracy = s.Accuracy
	if s.Topology != nil {
		if s.System != nil {
			return sc, fmt.Errorf("scenario %q: system and topology are mutually exclusive (system is the count-based alias of topology)", sc.Name)
		}
		ct := s.Topology.Canonical()
		if err := topo.Check(ct); err != nil {
			return sc, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sc.Topo = &ct
	} else if s.System == nil {
		sc.System = core.PaperSystem()
	} else {
		sys := core.SystemConfig{
			NumActiveMasters:  s.System.Masters,
			WithDefaultMaster: true,
			NumSlaves:         s.System.Slaves,
			SlaveWaits:        s.System.SlaveWaits,
			ClockPeriod:       10 * sim.Nanosecond,
			DataWidth:         32,
			SlaveRegionSize:   s.System.RegionSize,
		}
		if s.System.DefaultMaster != nil {
			sys.WithDefaultMaster = *s.System.DefaultMaster
		}
		if s.System.ClockPeriodPS != 0 {
			sys.ClockPeriod = sim.Time(s.System.ClockPeriodPS) * sim.Picosecond
		}
		if s.System.DataWidth != 0 {
			sys.DataWidth = s.System.DataWidth
		}
		pol, err := ahb.ParsePolicy(orDefault(s.System.Policy, "sticky"))
		if err != nil {
			return sc, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sys.Policy = pol
		sc.System = sys
	}
	if s.Analyzer != nil && !s.SkipAnalyzer {
		style, err := parseStyle(s.Analyzer.Style)
		if err != nil {
			return sc, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sc.Analyzer.Style = style
		if s.Analyzer.Tech != nil {
			sc.Analyzer.Tech = power.Tech{VDD: s.Analyzer.Tech.VDD, CPD: s.Analyzer.Tech.CPD, CO: s.Analyzer.Tech.CO}
		}
		sc.Analyzer.TraceWindow = s.Analyzer.TraceWindow
		sc.Analyzer.RecordActivity = s.Analyzer.RecordActivity
		if s.Analyzer.DPM != nil {
			sc.Analyzer.DPM = &core.DPMConfig{
				IdleThreshold: s.Analyzer.DPM.IdleThreshold,
				WakeEnergy:    s.Analyzer.DPM.WakeEnergy,
			}
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return sc, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sc.Faults = s.Faults
	}
	for _, w := range s.Workloads {
		pat, err := parsePattern(w.Pattern)
		if err != nil {
			return sc, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sc.Workloads = append(sc.Workloads, workload.Config{
			Seed:         w.Seed,
			NumSequences: w.NumSequences,
			PairsMin:     w.PairsMin, PairsMax: w.PairsMax,
			IdleMin: w.IdleMin, IdleMax: w.IdleMax,
			AddrBase: w.AddrBase, AddrSize: w.AddrSize,
			LocalityWindow: w.LocalityWindow,
			Pattern:        pat,
			BurstBeats:     w.BurstBeats,
		})
	}
	return sc, nil
}

func orDefault(s, def string) string {
	if strings.TrimSpace(s) == "" {
		return def
	}
	return s
}

// ErrorWire is the structured 400 body for decode-time rejections. ERC
// rejections (an invalid "topology" object) additionally carry the typed
// rule findings, so clients can match on codes instead of message text.
type ErrorWire struct {
	Error string `json:"error"`
	// Erc holds the ERC rule violations when the rejection came from the
	// topology compliance pass.
	Erc []topo.Error `json:"erc_errors,omitempty"`
	// Warnings holds the advisory ERC findings that accompanied the
	// rejection.
	Warnings []topo.Warning `json:"erc_warnings,omitempty"`
}

// ValidateResult is the per-scenario outcome of POST /v1/validate.
type ValidateResult struct {
	Name  string `json:"name"`
	Valid bool   `json:"valid"`
	// Key is the scenario's canonical cache key, when canonicalizable.
	Key string `json:"key,omitempty"`
	// Errors and Warnings are the typed ERC findings; a valid scenario can
	// still carry warnings (address-map gaps, odd clock periods).
	Errors   []topo.Error   `json:"erc_errors,omitempty"`
	Warnings []topo.Warning `json:"erc_warnings,omitempty"`
	// Error is the non-ERC decode failure, when that is what rejected the
	// scenario (bad enum values, missing cycles, malformed faults).
	Error string `json:"error,omitempty"`
}

// ValidateResponse is the body of POST /v1/validate: the dry-run
// decode + ERC validation report for every scenario, no admission or
// execution involved.
type ValidateResponse struct {
	// Valid reports whether every scenario decoded and validated cleanly.
	Valid   bool             `json:"valid"`
	Results []ValidateResult `json:"results"`
}

// ResultWire is the per-scenario response payload. It carries only
// deterministic content — no wall-clock timings — so the marshaled bytes
// depend solely on the scenario's canonical key, which is what makes a
// cached entry byte-identical to a fresh run. Timing lives in the
// response envelope's batch metrics, outside the identity guarantee.
type ResultWire struct {
	Name string `json:"name"`
	// Key is the scenario's canonical cache key; empty when the scenario
	// is not canonicalizable (never cached).
	Key    string `json:"key,omitempty"`
	Error  string `json:"error,omitempty"`
	Cycles uint64 `json:"cycles,omitempty"`
	Beats  uint64 `json:"beats,omitempty"`

	SimSeconds  float64 `json:"sim_s,omitempty"`
	TotalEnergy float64 `json:"energy_J,omitempty"`
	AvgPower    float64 `json:"avg_power_W,omitempty"`
	PJPerBeat   float64 `json:"pJ_per_beat,omitempty"`

	DataTransferShare float64 `json:"data_transfer_share,omitempty"`
	ArbitrationShare  float64 `json:"arbitration_share,omitempty"`
	IdleShare         float64 `json:"idle_share,omitempty"`

	Table       []TableRowWire     `json:"table,omitempty"`
	BlockEnergy map[string]float64 `json:"block_energy_J,omitempty"`
	BlockShare  map[string]float64 `json:"block_share,omitempty"`

	Counts     map[string]uint64 `json:"counts,omitempty"`
	Violations []string          `json:"violations,omitempty"`

	// Faults carries the injector's per-kind counters when the scenario
	// ran with an active fault plan. Injection is deterministic, so the
	// counters are part of the byte-identity guarantee like energies.
	Faults *fault.Stats `json:"faults,omitempty"`
	// Attempts is the number of execution attempts (>1 when the runner
	// retried an injected transient failure). Deterministic for a fixed
	// server retry policy; omitted for single-attempt runs.
	Attempts int `json:"attempts,omitempty"`
	// Accuracy is the accuracy class the numbers in this result actually
	// have ("cycle"|"transaction"). Part of the deterministic payload:
	// the class is in the cache key, so cached bytes always agree with it.
	// A transaction request that conservatively fell back still reports
	// "cycle" here — the numbers are exact.
	Accuracy string `json:"accuracy,omitempty"`

	DPM *DPMWire `json:"dpm,omitempty"`
}

// TableRowWire is one Table 1 row.
type TableRowWire struct {
	Instruction string  `json:"instruction"`
	Count       uint64  `json:"count"`
	AvgEnergy   float64 `json:"avg_energy_J"`
	TotalEnergy float64 `json:"total_energy_J"`
	Share       float64 `json:"share"`
}

// DPMWire is the dynamic-power-management estimate.
type DPMWire struct {
	GatedCycles uint64  `json:"gated_cycles"`
	Wakeups     uint64  `json:"wakeups"`
	GrossSaved  float64 `json:"gross_saved_J"`
	WakeCost    float64 `json:"wake_cost_J"`
	NetSaved    float64 `json:"net_saved_J"`
}

// resultWire flattens an engine result into its deterministic wire form.
func resultWire(res *engine.Result, key string) ResultWire {
	w := ResultWire{Name: res.Scenario.Name, Key: key}
	if res.Err != nil {
		w.Error = res.Err.Error()
		return w
	}
	w.Beats = res.Beats
	w.PJPerBeat = res.PJPerBeat()
	w.Counts = res.Counts
	w.Faults = res.Faults
	w.Accuracy = res.Accuracy
	if res.Attempts > 1 {
		w.Attempts = res.Attempts
	}
	for _, v := range res.Violations {
		w.Violations = append(w.Violations, v.Error())
	}
	w.Cycles = res.Metrics.Cycles
	if r := res.Report; r != nil {
		w.Cycles = r.Cycles
		w.SimSeconds = r.SimSeconds
		w.TotalEnergy = r.TotalEnergy
		w.AvgPower = r.AvgPower
		w.DataTransferShare = r.DataTransferShare
		w.ArbitrationShare = r.ArbitrationShare
		w.IdleShare = r.IdleShare
		w.BlockEnergy = r.BlockEnergy
		w.BlockShare = r.BlockShare
		for _, row := range r.Table {
			w.Table = append(w.Table, TableRowWire{
				Instruction: row.Instruction,
				Count:       row.Count,
				AvgEnergy:   row.AvgEnergy,
				TotalEnergy: row.TotalEnergy,
				Share:       row.Share,
			})
		}
	}
	if res.DPM != nil {
		w.DPM = &DPMWire{
			GatedCycles: res.DPM.GatedCycles,
			Wakeups:     res.DPM.Wakeups,
			GrossSaved:  res.DPM.GrossSaved,
			WakeCost:    res.DPM.WakeCost,
			NetSaved:    res.DPM.NetSaved(),
		}
	}
	return w
}

// RunResponse is the body of a completed batch: one raw result per
// scenario in input order (raw, so cached bytes are embedded untouched
// and a cache hit is byte-identical to a fresh run) plus the batch
// metrics envelope.
type RunResponse struct {
	Results []json.RawMessage `json:"results"`
	Batch   BatchWire         `json:"batch"`
}

// BatchWire is the envelope's metrics block: engine batch metrics plus
// cache accounting. Wall-clock values live here, outside the
// byte-identity guarantee of Results.
type BatchWire struct {
	metrics.BatchMetricsWire
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Uncacheable counts scenarios with no canonical key.
	Uncacheable int `json:"uncacheable,omitempty"`
	// Degraded reports that the batch ran in degraded mode (queue pressure
	// past the configured threshold); DegradedActions lists what the server
	// actually shed or overrode for this batch.
	Degraded        bool     `json:"degraded,omitempty"`
	DegradedActions []string `json:"degraded_actions,omitempty"`
	// Backends counts the freshly executed scenarios by the backend that
	// actually ran them (cache hits executed nothing and are not counted).
	// Like the degraded fields this lives in the envelope, not in
	// ResultWire: the backend is an execution detail, and result bytes
	// stay identical — and cache-shareable — across backends.
	Backends map[string]int `json:"backends,omitempty"`
	// Accuracies counts the freshly executed scenarios by the accuracy
	// class that actually ran ("cycle"|"transaction") — a transaction
	// request that conservatively fell back counts under "cycle".
	Accuracies map[string]int `json:"accuracies,omitempty"`
	// BackendFallbacks lists, in input order, the scenarios whose
	// compiled/auto/lanes request fell back to the event backend, with
	// the surfaced reason ("name: reason").
	BackendFallbacks []string `json:"backend_fallbacks,omitempty"`
}
