package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// degradeResponse mirrors the envelope fields the degradation tests
// assert on.
type degradeResponse struct {
	Results []json.RawMessage `json:"results"`
	Batch   struct {
		Scenarios       int      `json:"scenarios"`
		CacheHits       int      `json:"cache_hits"`
		CacheMisses     int      `json:"cache_misses"`
		Degraded        bool     `json:"degraded"`
		DegradedActions []string `json:"degraded_actions"`
	} `json:"batch"`
}

func decodeDegrade(t *testing.T, body []byte) degradeResponse {
	t.Helper()
	var resp degradeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	return resp
}

func hasAction(actions []string, prefix string) bool {
	for _, a := range actions {
		if len(a) >= len(prefix) && a[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// TestDegradedModeShedsTraceOptions forces degraded mode through the test
// seam and asserts trace-heavy analyzer options are shed, the scenario
// still succeeds, and the envelope + counters report the degradation.
func TestDegradedModeShedsTraceOptions(t *testing.T) {
	s := New(Config{Workers: 2})
	s.degradeHook = func() bool { return true }
	h := s.Handler()

	body := `{"scenarios":[{"name":"traced","cycles":1500,
		"analyzer":{"record_activity":true,"trace_window_s":1e-6},
		"workloads":[{"seed":3,"sequences":3,"pairs_min":2,"pairs_max":5,"idle_min":2,"idle_max":6,"addr_size":4096}]}]}`
	rr := post(h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeDegrade(t, rr.Body.Bytes())
	if !resp.Batch.Degraded {
		t.Error("envelope must flag degraded mode")
	}
	if !hasAction(resp.Batch.DegradedActions, "shed_trace_options:1") {
		t.Errorf("actions %v missing shed_trace_options:1", resp.Batch.DegradedActions)
	}
	var res wireResult
	if err := json.Unmarshal(resp.Results[0], &res); err != nil || res.Error != "" {
		t.Errorf("shed scenario must still succeed: err=%v wire=%+v", err, res)
	}
	if s.ctr.degradedBatches.Value() != 1 || s.ctr.degradedTraceShed.Value() != 1 {
		t.Errorf("counters degraded_batches=%d degraded_trace_shed=%d, want 1/1",
			s.ctr.degradedBatches.Value(), s.ctr.degradedTraceShed.Value())
	}

	// The shed scenario runs (and caches) under the same canonical key as
	// its explicitly-untraced twin: a later healthy request for the plain
	// scenario must hit the cache.
	s.degradeHook = func() bool { return false }
	plain := `{"scenarios":[{"name":"traced","cycles":1500,
		"workloads":[{"seed":3,"sequences":3,"pairs_min":2,"pairs_max":5,"idle_min":2,"idle_max":6,"addr_size":4096}]}]}`
	rr2 := post(h, plain)
	resp2 := decodeDegrade(t, rr2.Body.Bytes())
	if resp2.Batch.CacheHits != 1 {
		t.Errorf("plain twin of shed scenario: hits=%d, want 1 (re-keying broken?)", resp2.Batch.CacheHits)
	}
	if resp2.Batch.Degraded {
		t.Error("healthy batch must not be flagged degraded")
	}
}

// TestDegradedModeServesCacheDespiteNoCache warms the cache, then posts
// the same batch with no_cache under pressure: the server may serve the
// still-valid cached bytes, and must say so.
func TestDegradedModeServesCacheDespiteNoCache(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	body := `{"scenarios":[` + scenarioJSON("pressure", 1500, 11) + `]}`

	warm := decodeDegrade(t, post(h, body).Body.Bytes())
	if warm.Batch.CacheMisses != 1 {
		t.Fatalf("warm-up misses=%d, want 1", warm.Batch.CacheMisses)
	}

	s.degradeHook = func() bool { return true }
	rr := post(h, `{"no_cache":true,"scenarios":[`+scenarioJSON("pressure", 1500, 11)+`]}`)
	resp := decodeDegrade(t, rr.Body.Bytes())
	if !resp.Batch.Degraded || resp.Batch.CacheHits != 1 {
		t.Fatalf("degraded no_cache request: degraded=%v hits=%d, want true/1",
			resp.Batch.Degraded, resp.Batch.CacheHits)
	}
	if !hasAction(resp.Batch.DegradedActions, "served_from_cache_despite_no_cache") {
		t.Errorf("actions %v missing cache-override marker", resp.Batch.DegradedActions)
	}
	if string(warm.Results[0]) != string(resp.Results[0]) {
		t.Error("degraded cached bytes differ from the fresh run")
	}
	if s.ctr.degradedCacheServed.Value() != 1 {
		t.Errorf("degraded_cache_served=%d, want 1", s.ctr.degradedCacheServed.Value())
	}
}

// TestFaultPlanOverTheWire runs a faulted scenario through the HTTP
// layer: injector counters come back in the payload, the injected
// transient failure is retried by the server's policy, and the cached
// replay is byte-identical.
func TestFaultPlanOverTheWire(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	body := `{"scenarios":[{"name":"faulty","cycles":2000,
		"faults":{"seed":5,"fail_first":1,"rules":[{"kind":"error","count":2}]},
		"workloads":[{"seed":9,"sequences":4,"pairs_min":2,"pairs_max":6,"idle_min":2,"idle_max":8,"addr_size":4096}]}]}`

	rr := post(h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeDegrade(t, rr.Body.Bytes())
	var res struct {
		Name     string `json:"name"`
		Error    string `json:"error"`
		Attempts int    `json:"attempts"`
		Faults   struct {
			Errors uint64 `json:"errors"`
		} `json:"faults"`
	}
	if err := json.Unmarshal(resp.Results[0], &res); err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatalf("faulted scenario failed despite retry policy: %s", res.Error)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts=%d, want 2 (fail_first=1 + default retry)", res.Attempts)
	}
	if res.Faults.Errors != 2 {
		t.Errorf("injected errors=%d, want 2", res.Faults.Errors)
	}
	if s.ctr.scenariosRetried.Value() != 1 {
		t.Errorf("scenarios_retried=%d, want 1", s.ctr.scenariosRetried.Value())
	}

	second := decodeDegrade(t, post(h, body).Body.Bytes())
	if second.Batch.CacheHits != 1 {
		t.Fatalf("faulted scenario not cached: hits=%d", second.Batch.CacheHits)
	}
	if string(resp.Results[0]) != string(second.Results[0]) {
		t.Error("cached faulted result not byte-identical")
	}
}

// TestInvalidFaultPlanRejected asserts plan schema errors surface as 400s.
func TestInvalidFaultPlanRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()
	rr := post(h, `{"scenarios":[{"name":"bad","cycles":100,
		"faults":{"rules":[{"kind":"addr-flip","slave":1}]}}]}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rr.Code, rr.Body.String())
	}
}
