package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestJobRegistryEvictionBoundary pins the retention cap exactly at its
// boundary: maxKeep finished jobs all stay queryable, and the
// (maxKeep+1)-th retirement evicts precisely the oldest one.
func TestJobRegistryEvictionBoundary(t *testing.T) {
	const keep = 3
	r := newJobRegistry(keep)
	var jobs []*job
	for i := 0; i < keep; i++ {
		j := r.create(1)
		j.finish(JobDone, nil)
		r.retire(j)
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if _, ok := r.get(j.id); !ok {
			t.Errorf("job %s evicted at the cap, want retained", j.id)
		}
	}
	over := r.create(1)
	over.finish(JobDone, nil)
	r.retire(over)
	if _, ok := r.get(jobs[0].id); ok {
		t.Errorf("oldest job %s retained past the cap, want evicted", jobs[0].id)
	}
	for _, j := range append(jobs[1:], over) {
		if _, ok := r.get(j.id); !ok {
			t.Errorf("job %s evicted, want retained", j.id)
		}
	}
}

// TestJobRegistryConcurrent exercises create/get/retire from many
// goroutines at once; run under -race this pins the registry's locking.
func TestJobRegistryConcurrent(t *testing.T) {
	r := newJobRegistry(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j := r.create(1)
				if _, ok := r.get(j.id); !ok {
					t.Errorf("job %s invisible to get right after create", j.id)
				}
				j.finish(JobDone, []byte("{}"))
				r.retire(j)
			}
		}()
	}
	wg.Wait()
	if r.next != 8*50 {
		t.Errorf("next = %d, want %d", r.next, 8*50)
	}
}

// TestJobRegistryRestoreIdempotent pins the replay contract on the
// registry side: restoring the same id twice returns the same job, and
// ids observed by restore push the counter so create never collides.
func TestJobRegistryRestoreIdempotent(t *testing.T) {
	r := newJobRegistry(8)
	a := r.restore("job-000005", 2)
	b := r.restore("job-000005", 2)
	if a != b {
		t.Error("restoring the same id twice created two jobs")
	}
	f := r.restoreFinished("job-000002", JobDone, []byte(`{"results":[]}`), 3)
	if got := f.status.Load().(string); got != JobDone {
		t.Errorf("restored finished status %q, want done", got)
	}
	if got := f.completed.Load(); got != 3 {
		t.Errorf("restored finished completed = %d, want 3", got)
	}
	select {
	case <-f.done:
	default:
		t.Error("restored finished job not marked done")
	}
	if j := r.create(1); j.id != fmt.Sprintf("job-%06d", 6) {
		t.Errorf("create after restore issued %s, want job-000006", j.id)
	}
}
