package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// wireResult mirrors the fields of ResultWire the tests assert on.
type wireResult struct {
	Name  string `json:"name"`
	Key   string `json:"key"`
	Error string `json:"error"`
}

// wireResponse keeps Results raw so byte-identity can be asserted.
type wireResponse struct {
	Results []json.RawMessage `json:"results"`
	Batch   struct {
		Scenarios   int `json:"scenarios"`
		Failed      int `json:"failed"`
		CacheHits   int `json:"cache_hits"`
		CacheMisses int `json:"cache_misses"`
		Uncacheable int `json:"uncacheable"`
	} `json:"batch"`
}

func post(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func decodeRun(t *testing.T, rr *httptest.ResponseRecorder) wireResponse {
	t.Helper()
	var resp wireResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v\nbody: %s", err, rr.Body.String())
	}
	return resp
}

func scenarioJSON(name string, cycles uint64, seed int64) string {
	return fmt.Sprintf(`{"name":%q,"cycles":%d,"workloads":[{"seed":%d,"sequences":3,"pairs_min":2,"pairs_max":6,"idle_min":2,"idle_max":8,"addr_size":4096}]}`,
		name, cycles, seed)
}

// TestCacheHitByteIdentical posts the same batch twice and asserts the
// second response's result bytes are identical to the first's — the
// content-addressed cache must be invisible in the payload.
func TestCacheHitByteIdentical(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	body := `{"scenarios":[` + scenarioJSON("ident", 2000, 7) + `]}`

	first := post(h, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", first.Code, first.Body.String())
	}
	r1 := decodeRun(t, first)
	if r1.Batch.CacheMisses != 1 || r1.Batch.CacheHits != 0 {
		t.Fatalf("first request: hits=%d misses=%d, want 0/1", r1.Batch.CacheHits, r1.Batch.CacheMisses)
	}

	second := post(h, body)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: status %d", second.Code)
	}
	r2 := decodeRun(t, second)
	if r2.Batch.CacheHits != 1 || r2.Batch.CacheMisses != 0 {
		t.Fatalf("second request: hits=%d misses=%d, want 1/0", r2.Batch.CacheHits, r2.Batch.CacheMisses)
	}
	if string(r1.Results[0]) != string(r2.Results[0]) {
		t.Errorf("cached result is not byte-identical to the fresh one:\nfresh:  %s\ncached: %s",
			r1.Results[0], r2.Results[0])
	}

	// no_cache must bypass the lookup yet still produce the same bytes
	// (runs are deterministic).
	third := post(h, `{"no_cache":true,"scenarios":[`+scenarioJSON("ident", 2000, 7)+`]}`)
	r3 := decodeRun(t, third)
	if r3.Batch.CacheHits != 0 || r3.Batch.CacheMisses != 1 {
		t.Fatalf("no_cache request: hits=%d misses=%d, want 0/1", r3.Batch.CacheHits, r3.Batch.CacheMisses)
	}
	if string(r1.Results[0]) != string(r3.Results[0]) {
		t.Errorf("no_cache rerun differs from the original run:\n%s\n%s", r1.Results[0], r3.Results[0])
	}

	var res wireResult
	if err := json.Unmarshal(r1.Results[0], &res); err != nil || res.Error != "" || res.Key == "" {
		t.Errorf("result not clean: err=%v wire=%+v", err, res)
	}
}

// TestBackendCacheShared pins the serving side of the backend contract:
// the backend hint changes how a scenario executes, never what it
// computes, so a result cached from an event run must answer a compiled
// request (and vice versa) byte-identically, and the envelope — not the
// result — reports which backend fresh runs used.
func TestBackendCacheShared(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	spec := scenarioJSON("shared", 2000, 7)

	first := post(h, `{"backend":"event","scenarios":[`+spec+`]}`)
	if first.Code != http.StatusOK {
		t.Fatalf("event request: status %d, body %s", first.Code, first.Body.String())
	}
	var r1 struct {
		wireResponse
		Batch struct {
			CacheHits   int            `json:"cache_hits"`
			CacheMisses int            `json:"cache_misses"`
			Backends    map[string]int `json:"backends"`
			Fallbacks   []string       `json:"backend_fallbacks"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Batch.CacheMisses != 1 || r1.Batch.Backends["event"] != 1 {
		t.Fatalf("event request: misses=%d backends=%v, want 1 miss run on event",
			r1.Batch.CacheMisses, r1.Batch.Backends)
	}

	// Same scenario, opposite backend: must be a cache hit with identical
	// bytes, and no backend accounting (nothing executed).
	second := post(h, `{"backend":"compiled","scenarios":[`+spec+`]}`)
	var r2 struct {
		wireResponse
		Batch struct {
			CacheHits int            `json:"cache_hits"`
			Backends  map[string]int `json:"backends"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Batch.CacheHits != 1 || len(r2.Batch.Backends) != 0 {
		t.Fatalf("compiled request after event run: hits=%d backends=%v, want pure cache hit",
			r2.Batch.CacheHits, r2.Batch.Backends)
	}
	if string(r1.Results[0]) != string(r2.Results[0]) {
		t.Errorf("backend hint leaked into the result bytes:\nevent:    %s\ncompiled: %s",
			r1.Results[0], r2.Results[0])
	}

	// Forced fresh compiled run: same result bytes as the event run, and
	// the envelope says compiled executed.
	third := post(h, `{"no_cache":true,"backend":"compiled","scenarios":[`+spec+`]}`)
	var r3 struct {
		wireResponse
		Batch struct {
			Backends  map[string]int `json:"backends"`
			Fallbacks []string       `json:"backend_fallbacks"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(third.Body.Bytes(), &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Batch.Backends["compiled"] != 1 || len(r3.Batch.Fallbacks) != 0 {
		t.Fatalf("fresh compiled run: backends=%v fallbacks=%v, want compiled:1 and no fallback",
			r3.Batch.Backends, r3.Batch.Fallbacks)
	}
	if string(r1.Results[0]) != string(r3.Results[0]) {
		t.Errorf("compiled run differs from event run:\n%s\n%s", r1.Results[0], r3.Results[0])
	}

	// A DPM scenario cannot run compiled: it must fall back to event and
	// say so in the envelope.
	dpm := `{"name":"dpm","cycles":1500,"analyzer":{"dpm":{"idle_threshold":4,"wake_energy_J":1e-12}},` +
		`"workloads":[{"seed":7,"sequences":3,"pairs_min":2,"pairs_max":6,"idle_min":2,"idle_max":8,"addr_size":4096}],` +
		`"backend":"compiled"}`
	fourth := post(h, `{"scenarios":[`+dpm+`]}`)
	var r4 struct {
		Batch struct {
			Backends  map[string]int `json:"backends"`
			Fallbacks []string       `json:"backend_fallbacks"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(fourth.Body.Bytes(), &r4); err != nil {
		t.Fatal(err)
	}
	if r4.Batch.Backends["event"] != 1 || len(r4.Batch.Fallbacks) != 1 ||
		!strings.Contains(r4.Batch.Fallbacks[0], "DPM") {
		t.Errorf("DPM scenario: backends=%v fallbacks=%v, want event:1 with a DPM fallback reason",
			r4.Batch.Backends, r4.Batch.Fallbacks)
	}

	// Unknown backend names are rejected at decode, wherever they appear.
	for _, body := range []string{
		`{"backend":"turbo","scenarios":[` + spec + `]}`,
		`{"scenarios":[{"name":"x","cycles":100,"backend":"turbo"}]}`,
	} {
		if rr := post(h, body); rr.Code != http.StatusBadRequest {
			t.Errorf("bad backend accepted: status %d for %s", rr.Code, body)
		}
	}
}

// TestQueueFullRejects fills the execution slot and the bounded queue,
// then asserts the next request gets 503 with a Retry-After header while
// the queued request still completes once the slot frees up.
func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueue: 1})
	h := s.Handler()

	// Occupy the only execution slot so the next miss has to queue.
	s.slots <- struct{}{}

	queued := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		queued <- post(h, `{"scenarios":[`+scenarioJSON("queued", 1000, 1)+`]}`)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered the admission queue")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Queue is now at capacity: the next cache miss must bounce.
	rr := post(h, `{"scenarios":[`+scenarioJSON("rejected", 1000, 2)+`]}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-queue request: status %d, want 503; body %s", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Error("503 response is missing Retry-After")
	}
	resp := decodeRun(t, rr)
	var res wireResult
	if err := json.Unmarshal(resp.Results[0], &res); err != nil || res.Error == "" {
		t.Errorf("rejected scenario should carry the admission error, got %s", resp.Results[0])
	}
	if s.ctr.rejectedBusy.Value() != 1 {
		t.Errorf("rejected_busy = %d, want 1", s.ctr.rejectedBusy.Value())
	}

	// Release the slot: the queued request must finish normally.
	<-s.slots
	select {
	case done := <-queued:
		if done.Code != http.StatusOK {
			t.Fatalf("queued request: status %d, body %s", done.Code, done.Body.String())
		}
		qr := decodeRun(t, done)
		var qres wireResult
		if err := json.Unmarshal(qr.Results[0], &qres); err != nil || qres.Error != "" {
			t.Errorf("queued scenario failed: %s", qr.Results[0])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed after the slot was released")
	}
}

// TestDeadlineReturnsPartialResults runs a batch whose tail cannot finish
// inside the request deadline and asserts the response still carries the
// completed scenario cleanly, with the unfinished ones erroring — PR 3's
// cancellation semantics surfaced over HTTP.
func TestDeadlineReturnsPartialResults(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1})
	h := s.Handler()
	body := `{"timeout_ms":500,"scenarios":[` +
		scenarioJSON("fast", 500, 3) + `,` +
		scenarioJSON("slow-1", 20_000_000, 4) + `,` +
		scenarioJSON("slow-2", 20_000_000, 5) + `]}`

	rr := post(h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with partial results; body %s", rr.Code, rr.Body.String())
	}
	resp := decodeRun(t, rr)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	results := make([]wireResult, 3)
	for i, raw := range resp.Results {
		if err := json.Unmarshal(raw, &results[i]); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
	}
	if results[0].Error != "" {
		t.Errorf("fast scenario should have completed before the deadline: %q", results[0].Error)
	}
	if results[2].Error == "" {
		t.Error("slow tail scenario should carry the deadline error")
	}
	if resp.Batch.Failed < 1 {
		t.Errorf("batch failed count %d, want >= 1", resp.Batch.Failed)
	}
	// Only successful runs may be cached; cancellations must re-run.
	if n := s.cache.size(); n != 1 {
		t.Errorf("cache holds %d entries after a partial batch, want only the completed one", n)
	}
}

// TestSIGTERMGracefulDrain delivers a real SIGTERM (via the same
// signal.NotifyContext wiring cmd/ahbserved uses) while an async batch is
// mid-flight, drains, and asserts completed scenarios were flushed into
// the job's response while the server refuses new work.
func TestSIGTERMGracefulDrain(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	s := New(Config{Workers: 1, MaxConcurrent: 1})
	h := s.Handler()
	body := `{"async":true,"timeout_ms":600000,"scenarios":[` +
		scenarioJSON("quick", 2000, 8) + `,` +
		scenarioJSON("endless", 40_000_000, 9) + `]}`
	rr := post(h, body)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("async submit: status %d, body %s", rr.Code, rr.Body.String())
	}
	var accepted struct {
		JobID string `json:"job_id"`
		URL   string `json:"url"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &accepted); err != nil || accepted.JobID == "" {
		t.Fatalf("bad 202 body: %v, %s", err, rr.Body.String())
	}

	// Wait until the quick scenario has finished executing, so the drain
	// provably interrupts a half-done batch.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st JobStatus
		if err := json.Unmarshal(get(h, accepted.URL).Body.Bytes(), &st); err != nil {
			t.Fatalf("polling job: %v", err)
		}
		if st.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first scenario never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM was not observed")
	}
	s.Drain(50 * time.Millisecond) // grace far shorter than the endless run

	// Drained: no new work, health reports it.
	if rr := get(h, "/healthz"); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained: status %d, want 503", rr.Code)
	}
	if rr := post(h, `{"scenarios":[`+scenarioJSON("late", 1000, 10)+`]}`); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("post while drained: status %d, want 503", rr.Code)
	}

	// The interrupted job flushed its completed scenario.
	var st JobStatus
	if err := json.Unmarshal(get(h, accepted.URL).Body.Bytes(), &st); err != nil {
		t.Fatalf("reading drained job: %v", err)
	}
	if st.Status != JobCancelled {
		t.Fatalf("job status %q, want %q", st.Status, JobCancelled)
	}
	if st.Response == nil || len(st.Response.Results) != 2 {
		t.Fatalf("drained job has no full response: %+v", st)
	}
	var quick, endless wireResult
	if err := json.Unmarshal(st.Response.Results[0], &quick); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(st.Response.Results[1], &endless); err != nil {
		t.Fatal(err)
	}
	if quick.Error != "" {
		t.Errorf("completed scenario was dropped by the drain: %q", quick.Error)
	}
	if endless.Error == "" {
		t.Error("interrupted scenario should carry the cancellation error")
	}
}

// TestConcurrentRequests is the acceptance load: hundreds of concurrent
// requests against a small slot pool, no dropped completed results.
func TestConcurrentRequests(t *testing.T) {
	const n = 200
	s := New(Config{Workers: 2, MaxConcurrent: 2, MaxQueue: n})
	h := s.Handler()

	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// 8 distinct scenarios rotate, so the run mixes fresh
			// executions with cache hits under contention.
			rr := post(h, `{"scenarios":[`+scenarioJSON(fmt.Sprintf("load-%d", i%8), 500, int64(i%8))+`]}`)
			codes[i] = rr.Code
			bodies[i] = rr.Body.String()
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		var resp wireResponse
		if err := json.Unmarshal([]byte(bodies[i]), &resp); err != nil || len(resp.Results) != 1 {
			t.Fatalf("request %d: bad body %s", i, bodies[i])
		}
		var res wireResult
		if err := json.Unmarshal(resp.Results[0], &res); err != nil || res.Error != "" {
			t.Fatalf("request %d: scenario error %s", i, resp.Results[0])
		}
	}
	// Every scenario was either served from cache or executed — nothing
	// dropped. (All-miss is possible: concurrent requests may all check
	// the cache before the first run completes.)
	if hits, run := s.ctr.cacheHits.Value(), s.ctr.scenariosRun.Value(); hits+run != n {
		t.Errorf("cache_hits(%d) + scenarios_run(%d) = %d, want %d", hits, run, hits+run, n)
	}
	if got := s.ctr.requests.Value(); got != n {
		t.Errorf("requests_total = %d, want %d", got, n)
	}
}

// TestBadRequests covers the 400 paths of decodeRun.
func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, MaxCycles: 1000})
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"empty batch", `{"scenarios":[]}`},
		{"unknown field", `{"scenario":[{"cycles":100}]}`},
		{"zero cycles", `{"scenarios":[{"name":"z"}]}`},
		{"cycles over limit", `{"scenarios":[{"name":"big","cycles":2000}]}`},
		{"bad policy", `{"scenarios":[{"cycles":100,"system":{"masters":2,"slaves":1,"policy":"nope"}}]}`},
		{"bad pattern", `{"scenarios":[{"cycles":100,"workloads":[{"seed":1,"pattern":"nope"}]}]}`},
		{"not json", `scenario please`},
	}
	for _, c := range cases {
		if rr := post(h, c.body); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", c.name, rr.Code, rr.Body.String())
		}
	}
	if got := s.ctr.badRequests.Value(); got != int64(len(cases)) {
		t.Errorf("bad_requests = %d, want %d", got, len(cases))
	}
}

// TestJobLifecycle walks an async job from 202 to done.
func TestJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	rr := post(h, `{"async":true,"scenarios":[`+scenarioJSON("job", 2000, 11)+`]}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status %d, want 202", rr.Code)
	}
	var accepted struct {
		JobID string `json:"job_id"`
		URL   string `json:"url"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st JobStatus
		if err := json.Unmarshal(get(h, accepted.URL).Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone {
			if st.Completed != 1 || st.Response == nil || len(st.Response.Results) != 1 {
				t.Fatalf("done job malformed: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rr := get(h, "/v1/jobs/job-999999"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", rr.Code)
	}
}

// TestMetricsEndpoint sanity-checks the expvar rendering.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()
	post(h, `{"scenarios":[`+scenarioJSON("m", 1000, 12)+`]}`)
	rr := get(h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rr.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatalf("metrics body is not JSON: %v\n%s", err, rr.Body.String())
	}
	for _, key := range []string{"requests_total", "batches_total", "cache_misses", "scenarios_run", "cache_size"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if vars["scenarios_run"].(float64) != 1 {
		t.Errorf("scenarios_run = %v, want 1", vars["scenarios_run"])
	}
}

// TestLaneBackendServed drives the bit-parallel lane backend through the
// wire format: structurally identical "lanes" scenarios must pack (no
// fallback), be accounted under backend_lane_runs/lane_occupancy, and
// return bytes identical to the same batch recomputed on the event
// backend.
func TestLaneBackendServed(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	specs := scenarioJSON("lane-a", 2000, 7) + `,` + scenarioJSON("lane-b", 1500, 8)

	first := post(h, `{"backend":"lanes","scenarios":[`+specs+`]}`)
	if first.Code != http.StatusOK {
		t.Fatalf("lanes request: status %d, body %s", first.Code, first.Body.String())
	}
	var r1 struct {
		wireResponse
		Batch struct {
			Backends  map[string]int `json:"backends"`
			Fallbacks []string       `json:"backend_fallbacks"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Batch.Backends["lanes"] != 2 || len(r1.Batch.Fallbacks) != 0 {
		t.Fatalf("lanes request: backends=%v fallbacks=%v, want lanes:2 and no fallback",
			r1.Batch.Backends, r1.Batch.Fallbacks)
	}

	second := post(h, `{"no_cache":true,"backend":"event","scenarios":[`+specs+`]}`)
	var r2 wireResponse
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	for i := range r1.Results {
		if string(r1.Results[i]) != string(r2.Results[i]) {
			t.Errorf("lane result %d differs from the event recompute:\n%s\n%s",
				i, r1.Results[i], r2.Results[i])
		}
	}

	rr := get(h, "/metrics")
	var vars map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatalf("metrics body is not JSON: %v", err)
	}
	if vars["backend_lane_runs"].(float64) != 2 {
		t.Errorf("backend_lane_runs = %v, want 2", vars["backend_lane_runs"])
	}
	// Both scenarios rode one 2-lane pack: occupancy sums to 2 per lane run.
	if vars["lane_occupancy"].(float64) != 4 {
		t.Errorf("lane_occupancy = %v, want 4", vars["lane_occupancy"])
	}
}
