package probe

import "testing"

type rec struct {
	cycle int
}

func TestHubDispatchOrder(t *testing.T) {
	var h Hub[rec]
	var order []string
	h.AttachFunc(func(r rec) { order = append(order, "a") })
	h.AttachFunc(func(r rec) { order = append(order, "b") })
	h.Attach(Func[rec](func(r rec) { order = append(order, "c") }))
	if h.Len() != 3 {
		t.Fatalf("Len=%d, want 3", h.Len())
	}
	h.Publish(rec{1})
	want := []string{"a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v (attach order must be preserved)", order, want)
		}
	}
}

func TestHubZeroValueUsable(t *testing.T) {
	var h Hub[int]
	h.Publish(7) // no observers: must not panic
	got := 0
	h.AttachFunc(func(v int) { got = v })
	h.Publish(42)
	if got != 42 {
		t.Errorf("got=%d, want 42", got)
	}
}

func TestRecorder(t *testing.T) {
	var h Hub[rec]
	r := &Recorder[rec]{}
	h.Attach(r)
	if _, ok := r.Last(); ok {
		t.Error("empty recorder must report no last record")
	}
	for i := 1; i <= 4; i++ {
		h.Publish(rec{i})
	}
	if len(r.Records) != 4 {
		t.Fatalf("recorded %d, want 4", len(r.Records))
	}
	for i, g := range r.Records {
		if g.cycle != i+1 {
			t.Fatalf("records out of order: %v", r.Records)
		}
	}
	last, ok := r.Last()
	if !ok || last.cycle != 4 {
		t.Errorf("Last=%v ok=%v, want cycle 4", last, ok)
	}
}

func TestCounter(t *testing.T) {
	var h Hub[rec]
	c := &Counter[rec]{}
	h.Attach(c)
	for i := 0; i < 10; i++ {
		h.Publish(rec{i})
	}
	if c.N != 10 {
		t.Errorf("N=%d, want 10", c.N)
	}
}
