// Package probe is the typed observation layer between instrumented
// models and their consumers. A model (e.g. the AHB bus) samples itself
// once per settled cycle — driven by the kernel's sim.CycleObserver
// stream — and publishes one snapshot record per cycle through a Hub.
// Analyzers, protocol monitors, activity recorders and waveform dumpers
// attach to the hub as Observers and all consume the same event stream
// instead of reaching into model internals.
//
// This makes the paper's global/local/private integration distinction
// architectural: every integration style is just a different observer of
// the same settled-cycle record stream.
package probe

// Observer consumes one settled-cycle snapshot record of type T.
type Observer[T any] interface {
	ObserveCycle(rec T)
}

// Func adapts a plain function to an Observer.
type Func[T any] func(T)

// ObserveCycle implements Observer.
func (f Func[T]) ObserveCycle(rec T) { f(rec) }

// Hub fans settled-cycle records out to its observers in attach order.
// The zero value is ready to use. A Hub is owned by exactly one model and
// published from the simulation kernel's settled-timestep probe, so it
// needs no locking: all dispatch happens on the kernel's goroutine.
type Hub[T any] struct {
	obs []Observer[T]
}

// Attach registers an observer; it will see every record published after
// this call, in attach order relative to other observers.
func (h *Hub[T]) Attach(o Observer[T]) {
	h.obs = append(h.obs, o)
}

// AttachFunc registers a plain function as an observer.
func (h *Hub[T]) AttachFunc(fn func(T)) {
	h.Attach(Func[T](fn))
}

// Publish delivers one record to every attached observer.
func (h *Hub[T]) Publish(rec T) {
	for _, o := range h.obs {
		o.ObserveCycle(rec)
	}
}

// BatchObserver is an Observer that can additionally consume a whole
// slice of records in one call. Publishers that buffer records (e.g. the
// power analyzer's sample stream) hand the batch over directly, saving
// one dynamic dispatch per record; the records arrive in the same order
// Publish would have delivered them.
type BatchObserver[T any] interface {
	Observer[T]
	ObserveBatch(recs []T)
}

// PublishBatch delivers a slice of in-order records to every attached
// observer: batch-aware observers receive the slice in one ObserveBatch
// call, the rest see one ObserveCycle per record. The slice is only
// borrowed for the duration of the call — observers must not retain it.
func (h *Hub[T]) PublishBatch(recs []T) {
	for _, o := range h.obs {
		if bo, ok := o.(BatchObserver[T]); ok {
			bo.ObserveBatch(recs)
			continue
		}
		for i := range recs {
			o.ObserveCycle(recs[i])
		}
	}
}

// Len returns the number of attached observers.
func (h *Hub[T]) Len() int { return len(h.obs) }

// Recorder is an Observer that stores every record it sees, in order.
// Replay-style consumers (gate-level co-simulation, trace export) attach a
// Recorder during the run and walk Records afterwards.
type Recorder[T any] struct {
	Records []T
}

// ObserveCycle implements Observer.
func (r *Recorder[T]) ObserveCycle(rec T) { r.Records = append(r.Records, rec) }

// Last returns the most recent record and whether one exists.
func (r *Recorder[T]) Last() (T, bool) {
	if len(r.Records) == 0 {
		var zero T
		return zero, false
	}
	return r.Records[len(r.Records)-1], true
}

// Counter is an Observer that only counts records; the cheapest way to
// measure cycle throughput without retaining snapshots.
type Counter[T any] struct {
	N uint64
}

// ObserveCycle implements Observer.
func (c *Counter[T]) ObserveCycle(T) { c.N++ }
