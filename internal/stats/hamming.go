// Package stats provides the statistical primitives used throughout the
// power-analysis methodology: Hamming distances between successive bus
// values, switching-activity accumulators, windowed time series for
// power-versus-time figures, and summary statistics.
//
// The paper characterizes every energy macromodel in terms of the Hamming
// distance (HD) between two consecutive values of a signal, so these
// helpers are the lowest-level substrate of the whole methodology.
package stats

import "math/bits"

// Hamming returns the Hamming distance between two 64-bit values, i.e. the
// number of bit positions in which they differ. All narrower bus values
// (HADDR, HWDATA, HTRANS, ...) are widened to uint64 before comparison.
func Hamming(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// Hamming32 returns the Hamming distance between two 32-bit values.
func Hamming32(a, b uint32) int {
	return bits.OnesCount32(a ^ b)
}

// popcount8 is a 256-entry byte popcount table, the classic formulation of
// Hamming-distance extraction in power-macromodel tooling.
var popcount8 = func() (t [256]uint8) {
	for i := range t {
		t[i] = uint8(bits.OnesCount8(uint8(i)))
	}
	return t
}()

// Hamming32LUT returns the Hamming distance between two 32-bit values via
// the byte-sliced popcount table. It is exactly equivalent to Hamming32
// (the fuzz targets cross-check the two) and exists for callers that want
// a table-driven formulation independent of math/bits intrinsics.
func Hamming32LUT(a, b uint32) int {
	x := a ^ b
	return int(popcount8[x&0xff]) + int(popcount8[x>>8&0xff]) +
		int(popcount8[x>>16&0xff]) + int(popcount8[x>>24])
}

// HammingBool returns 1 if the two boolean signal values differ, else 0.
func HammingBool(a, b bool) int {
	if a != b {
		return 1
	}
	return 0
}

// HammingMasked returns the Hamming distance between a and b restricted to
// the bits selected by mask. It is used when a bus is narrower than its
// carrier integer (e.g. a 10-bit HADDR slice on a uint32 signal).
func HammingMasked(a, b, mask uint64) int {
	return bits.OnesCount64((a ^ b) & mask)
}

// Mask returns a mask with the low w bits set. w must be in [0,64].
func Mask(w int) uint64 {
	if w <= 0 {
		return 0
	}
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// CeilLog2 returns the smallest k such that 2^k >= n, with CeilLog2(0) and
// CeilLog2(1) both 0. It is the width of a binary encoding able to index n
// distinct values.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// PaperNI returns n_I as defined in the paper's decoder macromodel: "the
// first integer number greater than log2(n_O - 1)". For powers of two plus
// one the strict inequality matters, so this is not simply CeilLog2.
func PaperNI(nO int) int {
	if nO <= 1 {
		return 1
	}
	m := nO - 1
	// first integer strictly greater than log2(m)
	k := bits.Len(uint(m)) - 1 // floor(log2(m))
	if m == 1<<uint(k) {
		// log2(m) is exactly k, so the first integer greater than it is k+1.
		return k + 1
	}
	return k + 1
}
