package stats

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is a single sample of a time series. X is typically simulation time
// in seconds; Y a power or energy value.
type Point struct {
	X float64
	Y float64
}

// Series is an ordered sequence of samples, used for the paper's
// power-versus-time figures (Figs. 3-5).
type Series struct {
	Name   string
	XUnit  string
	YUnit  string
	Points []Point
}

// Add appends a sample to the series.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// MaxY returns the maximum Y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.Y > m {
			m = p.Y
		}
	}
	return m
}

// MeanY returns the arithmetic mean of Y, or 0 for an empty series.
func (s *Series) MeanY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum / float64(len(s.Points))
}

// SumY returns the sum of all Y values.
func (s *Series) SumY() float64 {
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum
}

// WriteCSV emits the series as a two-column CSV with a header line.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", nonEmpty(s.XUnit, "x"), nonEmpty(s.YUnit, "y")); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%g,%g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// ParseCSV reads a series previously emitted by WriteCSV: a two-column
// header line naming the units followed by one "x,y" row per point. The
// %g formatting WriteCSV uses round-trips float64 exactly, so
// ParseCSV(WriteCSV(s)) reproduces s bit for bit. It rejects rows with a
// missing column, trailing fields or unparsable numbers.
func ParseCSV(r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stats: series CSV is empty")
	}
	header := sc.Text()
	xu, yu, ok := strings.Cut(header, ",")
	if !ok || strings.Contains(yu, ",") {
		return nil, fmt.Errorf("stats: series CSV header %q, want two comma-separated units", header)
	}
	s := &Series{XUnit: xu, YUnit: yu}
	line := 1
	for sc.Scan() {
		line++
		row := sc.Text()
		if row == "" {
			continue // tolerate a trailing blank line
		}
		xs, ys, ok := strings.Cut(row, ",")
		if !ok || strings.Contains(ys, ",") {
			return nil, fmt.Errorf("stats: series CSV line %d: %q, want two columns", line, row)
		}
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return nil, fmt.Errorf("stats: series CSV line %d: bad x %q: %v", line, xs, err)
		}
		y, err := strconv.ParseFloat(ys, 64)
		if err != nil {
			return nil, fmt.Errorf("stats: series CSV line %d: bad y %q: %v", line, ys, err)
		}
		s.Add(x, y)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Windower converts a stream of (time, energy) increments into a windowed
// power series: each window of the configured duration accumulates energy,
// and P = E/window is emitted once per window. This is how the paper's
// power plots are produced from per-cycle energy contributions.
type Windower struct {
	Window   float64 // window duration in seconds
	series   *Series
	start    float64 // start time of the current window
	acc      float64 // energy accumulated in the current window
	started  bool
	finished bool
}

// NewWindower builds a windower emitting into a fresh series. window is the
// window duration in seconds.
func NewWindower(name string, window float64) *Windower {
	return &Windower{
		Window: window,
		series: &Series{Name: name, XUnit: "time_s", YUnit: "power_W"},
	}
}

// Deposit records an energy increment (joules) at the given time (seconds).
// Deposits must arrive in nondecreasing time order.
func (w *Windower) Deposit(t, energy float64) {
	if !w.started {
		w.start = math.Floor(t/w.Window) * w.Window
		w.started = true
	}
	for t >= w.start+w.Window {
		w.flush()
	}
	w.acc += energy
}

func (w *Windower) flush() {
	w.series.Add(w.start+w.Window/2, w.acc/w.Window)
	w.start += w.Window
	w.acc = 0
}

// Series finalizes the in-progress window (even if empty, so that
// parallel windowers fed at the same timestamps stay aligned) and returns
// the accumulated series. Further deposits after Series are not supported.
func (w *Windower) Series() *Series {
	if w.started && !w.finished {
		w.flush()
		w.finished = true
	}
	return w.series
}

// Summary holds the usual descriptive statistics for a slice of values.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	Median       float64
	Total        float64
}

// Summarize computes summary statistics for vs. It returns the zero value
// for an empty slice.
func Summarize(vs []float64) Summary {
	var s Summary
	s.N = len(vs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	for _, v := range vs {
		s.Total += v
	}
	s.Mean = s.Total / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range vs {
			d := v - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
