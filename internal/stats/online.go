package stats

import "math"

// Online accumulates streaming summary statistics — count, mean, variance
// (Welford), peak and RMS — in O(1) memory, so long-running recorders can
// expose live figures without retaining samples. The zero value is ready
// to use.
type Online struct {
	n     uint64
	mean  float64
	m2    float64 // sum of squared deviations from the running mean
	sumSq float64 // sum of squares, for RMS
	max   float64
	min   float64
}

// Add feeds one sample.
func (o *Online) Add(v float64) {
	o.n++
	if o.n == 1 {
		o.max, o.min = v, v
	} else {
		if v > o.max {
			o.max = v
		}
		if v < o.min {
			o.min = v
		}
	}
	d := v - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (v - o.mean)
	o.sumSq += v * v
}

// N returns the number of samples seen.
func (o *Online) N() uint64 { return o.n }

// Mean returns the running arithmetic mean, or 0 before any sample.
func (o *Online) Mean() float64 { return o.mean }

// Max returns the largest sample, or 0 before any sample.
func (o *Online) Max() float64 { return o.max }

// Min returns the smallest sample, or 0 before any sample.
func (o *Online) Min() float64 { return o.min }

// RMS returns the root-mean-square of the samples, or 0 before any sample.
func (o *Online) RMS() float64 {
	if o.n == 0 {
		return 0
	}
	return math.Sqrt(o.sumSq / float64(o.n))
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0
// with fewer than two samples.
func (o *Online) Stddev() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}
