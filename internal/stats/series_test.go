package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(1, 3)
	s.Add(2, 2)
	if s.Len() != 3 {
		t.Fatalf("Len=%d, want 3", s.Len())
	}
	if s.MaxY() != 3 {
		t.Errorf("MaxY=%v, want 3", s.MaxY())
	}
	if s.MeanY() != 2 {
		t.Errorf("MeanY=%v, want 2", s.MeanY())
	}
	if s.SumY() != 6 {
		t.Errorf("SumY=%v, want 6", s.SumY())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.MaxY() != 0 || s.MeanY() != 0 || s.SumY() != 0 {
		t.Error("empty series statistics must be zero")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := Series{XUnit: "t", YUnit: "p"}
	s.Add(1, 2.5)
	s.Add(2, 3.5)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "t,p\n1,2.5\n2,3.5\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSeriesWriteCSVDefaultHeader(t *testing.T) {
	var s Series
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x,y\n" {
		t.Errorf("CSV = %q, want default header", b.String())
	}
}

func TestWindowerPower(t *testing.T) {
	w := NewWindower("p", 1.0)
	// 2 J in window [0,1), 4 J in window [1,2).
	w.Deposit(0.1, 1)
	w.Deposit(0.9, 1)
	w.Deposit(1.5, 4)
	s := w.Series()
	if s.Len() != 2 {
		t.Fatalf("Len=%d, want 2", s.Len())
	}
	if s.Points[0].Y != 2 {
		t.Errorf("window 0 power=%v, want 2", s.Points[0].Y)
	}
	if s.Points[1].Y != 4 {
		t.Errorf("window 1 power=%v, want 4", s.Points[1].Y)
	}
	if s.Points[0].X != 0.5 || s.Points[1].X != 1.5 {
		t.Errorf("window centers = %v,%v", s.Points[0].X, s.Points[1].X)
	}
}

func TestWindowerGapEmitsEmptyWindows(t *testing.T) {
	w := NewWindower("p", 1.0)
	w.Deposit(0.5, 1)
	w.Deposit(3.5, 1)
	s := w.Series()
	if s.Len() != 4 {
		t.Fatalf("Len=%d, want 4 (two filled, two empty windows)", s.Len())
	}
	if s.Points[1].Y != 0 || s.Points[2].Y != 0 {
		t.Error("gap windows must carry zero power")
	}
}

func TestWindowerEnergyConservation(t *testing.T) {
	// Total energy deposited equals the integral of the windowed power.
	f := func(raw []uint8) bool {
		w := NewWindower("p", 0.25)
		total := 0.0
		tcur := 0.0
		for _, r := range raw {
			tcur += float64(r%16) / 16.0
			e := float64(r) / 255.0
			w.Deposit(tcur, e)
			total += e
		}
		s := w.Series()
		integral := 0.0
		for _, p := range s.Points {
			integral += p.Y * w.Window
		}
		return math.Abs(integral-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("bad extremes: %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 || s.Total != 10 {
		t.Errorf("bad center: %+v", s)
	}
	sd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-sd) > 1e-12 {
		t.Errorf("Stddev=%v, want %v", s.Stddev, sd)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("Median=%v, want 5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary must be zero")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Median != 7 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize must not reorder its input")
	}
}
