package stats

import (
	"testing"
	"testing/quick"
)

func TestHammingBasics(t *testing.T) {
	cases := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0xFF, 0x00, 8},
		{0xAAAA, 0x5555, 16},
		{^uint64(0), 0, 64},
		{0b1010, 0b1001, 2},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b); got != c.want {
			t.Errorf("Hamming(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingSymmetric(t *testing.T) {
	f := func(a, b uint64) bool { return Hamming(a, b) == Hamming(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingIdentity(t *testing.T) {
	f := func(a uint64) bool { return Hamming(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingTriangleInequality(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHamming32MatchesHamming(t *testing.T) {
	f := func(a, b uint32) bool {
		return Hamming32(a, b) == Hamming(uint64(a), uint64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingBool(t *testing.T) {
	if HammingBool(true, true) != 0 || HammingBool(false, false) != 0 {
		t.Error("equal booleans must have distance 0")
	}
	if HammingBool(true, false) != 1 || HammingBool(false, true) != 1 {
		t.Error("unequal booleans must have distance 1")
	}
}

func TestHammingMasked(t *testing.T) {
	if got := HammingMasked(0xFF, 0x00, 0x0F); got != 4 {
		t.Errorf("HammingMasked = %d, want 4", got)
	}
	f := func(a, b uint64) bool {
		return HammingMasked(a, b, ^uint64(0)) == Hamming(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		w    int
		want uint64
	}{
		{0, 0}, {-3, 0}, {1, 1}, {4, 0xF}, {8, 0xFF}, {32, 0xFFFFFFFF}, {64, ^uint64(0)}, {100, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.w); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPaperNI(t *testing.T) {
	// "the first integer number greater than log2(n_O - 1)"
	cases := []struct{ nO, want int }{
		{2, 1},  // log2(1)=0 -> 1
		{3, 2},  // log2(2)=1 -> 2
		{4, 2},  // log2(3)=1.58 -> 2
		{5, 3},  // log2(4)=2 -> 3
		{8, 3},  // log2(7)=2.8 -> 3
		{9, 4},  // log2(8)=3 -> 4
		{16, 4}, // log2(15)=3.9 -> 4
		{17, 5}, // log2(16)=4 -> 5
	}
	for _, c := range cases {
		if got := PaperNI(c.nO); got != c.want {
			t.Errorf("PaperNI(%d) = %d, want %d", c.nO, got, c.want)
		}
	}
}
