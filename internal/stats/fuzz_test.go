package stats

import (
	"bytes"
	"math"
	"math/bits"
	"strings"
	"testing"
)

// FuzzHamming cross-checks every Hamming-distance formulation against a
// naive bit loop and verifies the metric's algebraic identities.
func FuzzHamming(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(^uint64(0)))
	f.Add(uint64(0xdeadbeef), uint64(0xbeefdead), uint64(0xffff))
	f.Add(^uint64(0), uint64(0), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, a, b, mask uint64) {
		naive := 0
		for x := a ^ b; x != 0; x >>= 1 {
			naive += int(x & 1)
		}
		if got := Hamming(a, b); got != naive {
			t.Fatalf("Hamming(%#x,%#x)=%d, naive=%d", a, b, got, naive)
		}
		if Hamming(a, b) != Hamming(b, a) {
			t.Fatalf("Hamming not symmetric for %#x,%#x", a, b)
		}
		if Hamming(a, a) != 0 {
			t.Fatalf("Hamming(%#x, same) != 0", a)
		}
		if got := HammingMasked(a, b, ^uint64(0)); got != naive {
			t.Fatalf("HammingMasked full mask=%d, want %d", got, naive)
		}
		if got, want := HammingMasked(a, b, mask), bits.OnesCount64((a^b)&mask); got != want {
			t.Fatalf("HammingMasked(%#x,%#x,%#x)=%d, want %d", a, b, mask, got, want)
		}
		// Masked distance never exceeds the unmasked one.
		if HammingMasked(a, b, mask) > naive {
			t.Fatalf("masked HD exceeds full HD for %#x,%#x,%#x", a, b, mask)
		}
		a32, b32 := uint32(a), uint32(b)
		if Hamming32(a32, b32) != Hamming32LUT(a32, b32) {
			t.Fatalf("Hamming32(%#x,%#x)=%d, LUT=%d",
				a32, b32, Hamming32(a32, b32), Hamming32LUT(a32, b32))
		}
		if Hamming32(a32, b32) != HammingMasked(uint64(a32), uint64(b32), Mask(32)) {
			t.Fatalf("Hamming32 disagrees with 32-bit masked Hamming for %#x,%#x", a32, b32)
		}
	})
}

// FuzzSeriesCSV feeds arbitrary bytes to the series parser: it must never
// panic, and anything it accepts must survive a write/re-parse round trip
// unchanged (parse -> serialize -> parse is a fixed point).
func FuzzSeriesCSV(f *testing.F) {
	f.Add([]byte("t_s,power_W\n1,2.5\n2,3.5\n"))
	f.Add([]byte("x,y\n"))
	f.Add([]byte("a,b\nNaN,+Inf\n-Inf,0\n"))
	f.Add([]byte("x,y\n1e308,5e-324\n"))
	f.Add([]byte("bad"))
	f.Add([]byte("x,y\n1,2,3\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var out strings.Builder
		if err := s.WriteCSV(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		s2, err := ParseCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput: %q", err, out.String())
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip changed length: %d -> %d", s.Len(), s2.Len())
		}
		for i := range s.Points {
			if !sameFloat(s.Points[i].X, s2.Points[i].X) || !sameFloat(s.Points[i].Y, s2.Points[i].Y) {
				t.Fatalf("point %d changed: %+v -> %+v", i, s.Points[i], s2.Points[i])
			}
		}
	})
}

// sameFloat compares floats treating every NaN as equal to every NaN (the
// bit payload is not preserved by the textual form).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// TestSeriesCSVRoundTrip pins the exact inverse property on a concrete
// series, including the unit header and extreme values.
func TestSeriesCSVRoundTrip(t *testing.T) {
	s := &Series{Name: "p", XUnit: "time_s", YUnit: "power_W"}
	for _, p := range []Point{
		{0, 0}, {1e-9, 3.25e-3}, {2e-9, -1}, {3e-9, math.MaxFloat64},
		{4e-9, 5e-324}, {5e-9, math.Inf(1)}, {6e-9, math.Inf(-1)},
	} {
		s.Add(p.X, p.Y)
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.XUnit != s.XUnit || got.YUnit != s.YUnit {
		t.Errorf("units = %q,%q, want %q,%q", got.XUnit, got.YUnit, s.XUnit, s.YUnit)
	}
	if got.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), s.Len())
	}
	for i := range s.Points {
		if got.Points[i] != s.Points[i] {
			t.Errorf("point %d = %+v, want %+v", i, got.Points[i], s.Points[i])
		}
	}
}

// TestParseCSVRejectsMalformed pins the error paths.
func TestParseCSVRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                 // empty
		"onecolumn\n",      // header without comma
		"x,y,z\n",          // three-column header
		"x,y\n1\n",         // row without comma
		"x,y\n1,2,3\n",     // three-column row
		"x,y\nfoo,2\n",     // bad x
		"x,y\n1,bar\n",     // bad y
		"x,y\n1,2\n3,\n",   // empty y
		"x,y\n0x1p2,1\n\n", // hex float (ParseFloat accepts "0x1p2"? it does) — see below
	} {
		_, err := ParseCSV(strings.NewReader(bad))
		if bad == "x,y\n0x1p2,1\n\n" {
			// strconv.ParseFloat accepts hex floats; this input is legal.
			if err != nil {
				t.Errorf("ParseCSV(%q) unexpectedly failed: %v", bad, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseCSV(%q) succeeded, want error", bad)
		}
	}
}
