package stats

import (
	"testing"
	"testing/quick"
)

func TestBitActivityStore(t *testing.T) {
	a := NewBitActivity(8)
	if hd := a.Store(0x00); hd != 0 {
		t.Errorf("first Store returned hd=%d, want 0", hd)
	}
	if hd := a.Store(0x0F); hd != 4 {
		t.Errorf("Store(0x0F) hd=%d, want 4", hd)
	}
	if hd := a.Store(0xFF); hd != 4 {
		t.Errorf("Store(0xFF) hd=%d, want 4", hd)
	}
	if a.Samples != 3 {
		t.Errorf("Samples=%d, want 3", a.Samples)
	}
	if a.BitChanges != 8 {
		t.Errorf("BitChanges=%d, want 8", a.BitChanges)
	}
}

func TestBitActivityWidthMasking(t *testing.T) {
	a := NewBitActivity(4)
	a.Store(0)
	if hd := a.Store(0xF0); hd != 0 {
		t.Errorf("bits above width must be ignored, hd=%d", hd)
	}
	if hd := a.Store(0x0F); hd != 4 {
		t.Errorf("hd=%d, want 4", hd)
	}
}

func TestBitActivityWidthClamping(t *testing.T) {
	if w := NewBitActivity(0).Width(); w != 1 {
		t.Errorf("width 0 should clamp to 1, got %d", w)
	}
	if w := NewBitActivity(100).Width(); w != 64 {
		t.Errorf("width 100 should clamp to 64, got %d", w)
	}
}

func TestBitActivityPerBitToggles(t *testing.T) {
	a := NewBitActivity(2)
	a.Store(0b00)
	a.Store(0b01)
	a.Store(0b00)
	a.Store(0b10)
	// Transitions: 00->01 toggles bit0, 01->00 toggles bit0, 00->10 toggles bit1.
	if a.Toggles[0] != 2 {
		t.Errorf("bit0 toggles=%d, want 2", a.Toggles[0])
	}
	if a.Toggles[1] != 1 {
		t.Errorf("bit1 toggles=%d, want 1", a.Toggles[1])
	}
}

func TestBitActivityTogglesSumEqualsBitChanges(t *testing.T) {
	f := func(vals []uint16) bool {
		a := NewBitActivity(16)
		for _, v := range vals {
			a.Store(uint64(v))
		}
		var sum uint64
		for _, c := range a.Toggles {
			sum += c
		}
		return sum == a.BitChanges
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitActivityProbability(t *testing.T) {
	a := NewBitActivity(1)
	a.Store(1)
	a.Store(1)
	a.Store(0)
	a.Store(1)
	if p := a.BitProbability(0); p != 0.75 {
		t.Errorf("BitProbability=%v, want 0.75", p)
	}
	if p := a.BitProbability(5); p != 0 {
		t.Errorf("out-of-range bit probability=%v, want 0", p)
	}
}

func TestBitActivitySwitchingActivity(t *testing.T) {
	a := NewBitActivity(8)
	if sa := a.SwitchingActivity(); sa != 0 {
		t.Errorf("empty activity=%v, want 0", sa)
	}
	a.Store(0x00)
	a.Store(0xFF)
	a.Store(0x00)
	if sa := a.SwitchingActivity(); sa != 8 {
		t.Errorf("SwitchingActivity=%v, want 8", sa)
	}
}

func TestBitActivityReset(t *testing.T) {
	a := NewBitActivity(8)
	a.Store(0xFF)
	a.Store(0x00)
	a.Reset()
	if a.Samples != 0 || a.BitChanges != 0 {
		t.Error("Reset must clear counters")
	}
	if _, ok := a.Last(); ok {
		t.Error("Reset must clear the previous value")
	}
	if hd := a.Store(0xFF); hd != 0 {
		t.Errorf("first store after reset hd=%d, want 0", hd)
	}
}

func TestBitActivityLast(t *testing.T) {
	a := NewBitActivity(8)
	if _, ok := a.Last(); ok {
		t.Error("Last must report absence before any Store")
	}
	a.Store(0x42)
	if v, ok := a.Last(); !ok || v != 0x42 {
		t.Errorf("Last=(%#x,%v), want (0x42,true)", v, ok)
	}
}
