package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2*x0 + 3*x1, noiseless.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{2, 3, 5, 7}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-9 || math.Abs(beta[1]-3) > 1e-9 {
		t.Errorf("beta=%v, want [2 3]", beta)
	}
}

func TestLeastSquaresRecoversRandomModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(4)
		truth := make([]float64, p)
		for i := range truth {
			truth[i] = rng.Float64()*10 - 5
		}
		n := p + 5 + rng.Intn(20)
		x := make([][]float64, n)
		y := make([]float64, n)
		for r := 0; r < n; r++ {
			x[r] = make([]float64, p)
			for c := 0; c < p; c++ {
				x[r][c] = rng.Float64()*4 - 2
			}
			for c := 0; c < p; c++ {
				y[r] += truth[c] * x[r][c]
			}
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for c := 0; c < p; c++ {
			if math.Abs(beta[c]-truth[c]) > 1e-6 {
				t.Fatalf("trial %d: beta=%v, want %v", trial, beta, truth)
			}
		}
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	// Two identical columns: no unique solution.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := LeastSquares(x, y); err == nil {
		t.Error("expected singular-system error")
	}
}

func TestLeastSquaresDimensionErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system must error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch must error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows must error")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("no features must error")
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Requires pivoting: zero on the diagonal.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 4}
	sol, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-4) > 1e-12 || math.Abs(sol[1]-3) > 1e-12 {
		t.Errorf("sol=%v, want [4 3]", sol)
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		a := make([][]float64, p)
		x := make([]float64, p)
		for i := range a {
			a[i] = make([]float64, p)
			for j := range a[i] {
				a[i][j] = rng.Float64()*2 - 1
			}
			a[i][i] += float64(p) // diagonally dominant => nonsingular
			x[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, p)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		// SolveLinear mutates, so copy.
		ac := make([][]float64, p)
		for i := range a {
			ac[i] = append([]float64(nil), a[i]...)
		}
		sol, err := SolveLinear(ac, append([]float64(nil), b...))
		if err != nil {
			return false
		}
		for i := range sol {
			if math.Abs(sol[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3}
	if r := RSquared(y, y); r != 1 {
		t.Errorf("perfect fit r2=%v, want 1", r)
	}
	if r := RSquared(y, []float64{2, 2, 2}); r != 0 {
		t.Errorf("mean-only fit r2=%v, want 0", r)
	}
	if r := RSquared([]float64{5, 5}, []float64{5, 5}); r != 0 {
		t.Errorf("constant target r2=%v, want 0 by convention", r)
	}
	if r := RSquared(y, []float64{1}); r != 0 {
		t.Errorf("mismatched lengths r2=%v, want 0", r)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	y := []float64{10, 20}
	pred := []float64{11, 18}
	got := MeanAbsPctError(y, pred)
	want := 100 * (0.1 + 0.1) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MAPE=%v, want %v", got, want)
	}
	if !math.IsNaN(MeanAbsPctError(y, []float64{1})) {
		t.Error("length mismatch must return NaN")
	}
	if MeanAbsPctError([]float64{0, 0}, []float64{1, 2}) != 0 {
		t.Error("all-zero targets are skipped, MAPE must be 0")
	}
}
