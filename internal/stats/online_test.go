package stats

import (
	"math"
	"testing"
)

func TestOnlineAgainstClosedForm(t *testing.T) {
	vs := []float64{2, -1, 7, 4, 4, 0.5}
	var o Online
	for _, v := range vs {
		o.Add(v)
	}
	if o.N() != uint64(len(vs)) {
		t.Errorf("N=%d, want %d", o.N(), len(vs))
	}
	var sum, sumSq float64
	for _, v := range vs {
		sum += v
		sumSq += v * v
	}
	n := float64(len(vs))
	mean := sum / n
	if math.Abs(o.Mean()-mean) > 1e-12 {
		t.Errorf("Mean=%v, want %v", o.Mean(), mean)
	}
	if math.Abs(o.RMS()-math.Sqrt(sumSq/n)) > 1e-12 {
		t.Errorf("RMS=%v, want %v", o.RMS(), math.Sqrt(sumSq/n))
	}
	var m2 float64
	for _, v := range vs {
		m2 += (v - mean) * (v - mean)
	}
	if want := math.Sqrt(m2 / (n - 1)); math.Abs(o.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev=%v, want %v", o.Stddev(), want)
	}
	if o.Max() != 7 || o.Min() != -1 {
		t.Errorf("Max=%v Min=%v, want 7/-1", o.Max(), o.Min())
	}
}

func TestOnlineEdgeCases(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.RMS() != 0 || o.Stddev() != 0 || o.Max() != 0 || o.Min() != 0 {
		t.Error("zero-value Online must report zeros")
	}
	o.Add(-3)
	if o.Mean() != -3 || o.Max() != -3 || o.Min() != -3 {
		t.Errorf("single negative sample: mean=%v max=%v min=%v", o.Mean(), o.Max(), o.Min())
	}
	if o.Stddev() != 0 {
		t.Errorf("Stddev of one sample=%v, want 0", o.Stddev())
	}
	if o.RMS() != 3 {
		t.Errorf("RMS=%v, want 3", o.RMS())
	}
}
