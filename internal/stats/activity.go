package stats

// BitActivity accumulates switching activity of a single multi-bit signal:
// total bit changes, per-bit toggle counts, number of observations, and the
// one-probability of each bit. It mirrors the bookkeeping performed by the
// paper's Activity class (bit_change_count / store_activity).
type BitActivity struct {
	width    int
	prev     uint64
	havePrev bool

	Samples    uint64   // number of stored observations
	BitChanges uint64   // total Hamming distance accumulated
	Toggles    []uint64 // per-bit toggle counts
	Ones       []uint64 // per-bit count of observed 1 values
}

// NewBitActivity creates an accumulator for a signal of the given bit width
// (1..64).
func NewBitActivity(width int) *BitActivity {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	return &BitActivity{
		width:   width,
		Toggles: make([]uint64, width),
		Ones:    make([]uint64, width),
	}
}

// Width returns the signal width in bits.
func (a *BitActivity) Width() int { return a.width }

// Store records a new observation of the signal value and returns the
// Hamming distance to the previous observation (0 for the first).
func (a *BitActivity) Store(v uint64) int {
	v &= Mask(a.width)
	hd := 0
	if a.havePrev {
		diff := a.prev ^ v
		for b := 0; b < a.width; b++ {
			bit := uint64(1) << uint(b)
			if diff&bit != 0 {
				a.Toggles[b]++
				hd++
			}
		}
	}
	for b := 0; b < a.width; b++ {
		if v&(uint64(1)<<uint(b)) != 0 {
			a.Ones[b]++
		}
	}
	a.prev = v
	a.havePrev = true
	a.Samples++
	a.BitChanges += uint64(hd)
	return hd
}

// Last returns the most recently stored value and whether one exists.
func (a *BitActivity) Last() (uint64, bool) { return a.prev, a.havePrev }

// SwitchingActivity returns the average number of bit changes per
// observation interval (total bit changes divided by transitions observed).
func (a *BitActivity) SwitchingActivity() float64 {
	if a.Samples < 2 {
		return 0
	}
	return float64(a.BitChanges) / float64(a.Samples-1)
}

// BitProbability returns the probability that bit b was 1 across all
// observations, or 0 if nothing was stored.
func (a *BitActivity) BitProbability(b int) float64 {
	if a.Samples == 0 || b < 0 || b >= a.width {
		return 0
	}
	return float64(a.Ones[b]) / float64(a.Samples)
}

// Reset clears all accumulated state.
func (a *BitActivity) Reset() {
	a.prev = 0
	a.havePrev = false
	a.Samples = 0
	a.BitChanges = 0
	for i := range a.Toggles {
		a.Toggles[i] = 0
	}
	for i := range a.Ones {
		a.Ones[i] = 0
	}
}
