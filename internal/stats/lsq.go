package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (collinear features or too few observations).
var ErrSingular = errors.New("stats: singular normal equations")

// LeastSquares solves min ||X·beta - y||² by the normal equations with
// partial-pivot Gaussian elimination. X has one row per observation and one
// column per feature; the returned beta has one entry per feature.
//
// The characterization harness uses this to fit energy-macromodel
// coefficients from gate-level measurements (the role the paper delegated
// to SIS-based characterization).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: bad dimensions: %d rows, %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("stats: no features")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(row), p)
		}
	}
	// Build the normal equations A = XᵀX, b = Xᵀy.
	a := make([][]float64, p)
	b := make([]float64, p)
	for i := 0; i < p; i++ {
		a[i] = make([]float64, p)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < p; i++ {
			xi := x[r][i]
			if xi == 0 {
				continue
			}
			b[i] += xi * y[r]
			for j := 0; j < p; j++ {
				a[i][j] += xi * x[r][j]
			}
		}
	}
	return SolveLinear(a, b)
}

// SolveLinear solves the square system a·x = b in place using Gaussian
// elimination with partial pivoting. a and b are modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	p := len(a)
	if p == 0 || len(b) != p {
		return nil, errors.New("stats: bad linear system dimensions")
	}
	for col := 0; col < p; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < p; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < p; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < p; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	sol := make([]float64, p)
	for r := p - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < p; c++ {
			s -= a[r][c] * sol[c]
		}
		sol[r] = s / a[r][r]
	}
	return sol, nil
}

// RSquared returns the coefficient of determination of predictions pred
// against observations y: 1 - SS_res/SS_tot. A constant y yields 0.
func RSquared(y, pred []float64) float64 {
	if len(y) == 0 || len(y) != len(pred) {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	ssRes, ssTot := 0.0, 0.0
	for i := range y {
		d := y[i] - pred[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// MeanAbsPctError returns the mean absolute percentage error of pred vs y,
// skipping observations where y is zero.
func MeanAbsPctError(y, pred []float64) float64 {
	if len(y) != len(pred) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for i := range y {
		if y[i] == 0 {
			continue
		}
		sum += math.Abs((pred[i] - y[i]) / y[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}
