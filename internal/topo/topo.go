// Package topo is the declarative topology layer: a Topology value
// describes an AHB system shape explicitly — masters with priorities and
// optional per-master workload hints, slaves with per-slave wait states
// and explicit address regions, an arbitration policy, clock and data
// width — replacing the implicit "N equal slaves in equal contiguous
// regions" assumption of the count-based core.SystemConfig.
//
// Topology is also the wire form: the serving layer accepts it verbatim
// as the "topology" object of a scenario, and the count-based legacy
// forms (core.SystemConfig, the serve layer's SystemSpec) canonicalize
// into it through Canonicalize, so both API generations build the same
// systems byte for byte.
//
// Validate is the ERC (electrical-rule-check-style) compliance pass that
// makes arbitrary user topologies safe to accept from untrusted traffic:
// it returns structured, typed errors and warnings (address-map overlap,
// 1 KB granularity violations, zero-master systems, default-master
// conflicts, unreachable slaves, clock/width contract violations) that
// the serving layer rejects at decode time, before admission.
package topo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/sim"
	"ahbpower/internal/workload"
)

// Defaults applied by Canonical: the paper's 100 MHz, 32-bit testbench
// parameters and its 4 KB per-slave regions.
const (
	DefaultClockPeriodPS = 10_000 // 100 MHz
	DefaultDataWidth     = 32
	DefaultRegionSize    = 0x1000 // 4 KB
)

// MaxPorts is the AHB limit on masters and on slaves (HMASTER is 4 bits;
// the split mask is 16 wide).
const MaxPorts = 16

// RegionAlign is the minimum address-map granularity: the AMBA 2.0 AHB
// spec allocates slaves in 1 KB units so that bursts (which must not
// cross a 1 KB boundary, §3.9) can never straddle two slaves.
const RegionAlign = 1024

// AddrRange is one contiguous address region, [Start, Start+Size).
type AddrRange struct {
	Start uint32 `json:"start"`
	Size  uint32 `json:"size"`
}

// End returns the exclusive upper bound of the range, in 64 bits so a
// region touching the top of the 32-bit space does not wrap.
func (r AddrRange) End() uint64 { return uint64(r.Start) + uint64(r.Size) }

// String formats the range as [start, end).
func (r AddrRange) String() string {
	return fmt.Sprintf("[0x%08x, 0x%08x)", r.Start, r.End())
}

// Workload is a per-master traffic hint: the wire form of
// workload.Config, carried inside the topology so one document can
// describe both the system shape and the traffic that exercises it.
type Workload struct {
	Seed           int64  `json:"seed"`
	Sequences      int    `json:"sequences"`
	PairsMin       int    `json:"pairs_min"`
	PairsMax       int    `json:"pairs_max"`
	IdleMin        int    `json:"idle_min,omitempty"`
	IdleMax        int    `json:"idle_max,omitempty"`
	AddrBase       uint32 `json:"addr_base,omitempty"`
	AddrSize       uint32 `json:"addr_size,omitempty"`
	LocalityWindow uint32 `json:"locality_window,omitempty"`
	Pattern        string `json:"pattern,omitempty"` // random|low-activity|counter
	BurstBeats     int    `json:"burst_beats,omitempty"`
}

// Config converts the hint into a workload configuration.
func (w *Workload) Config() (workload.Config, error) {
	pat, err := workload.ParsePattern(w.Pattern)
	if err != nil {
		return workload.Config{}, err
	}
	return workload.Config{
		Seed:         w.Seed,
		NumSequences: w.Sequences,
		PairsMin:     w.PairsMin, PairsMax: w.PairsMax,
		IdleMin: w.IdleMin, IdleMax: w.IdleMax,
		AddrBase: w.AddrBase, AddrSize: w.AddrSize,
		LocalityWindow: w.LocalityWindow,
		Pattern:        pat,
		BurstBeats:     w.BurstBeats,
	}, nil
}

// Master is one bus master port. Masters are listed in priority order:
// the port index is the arbitration priority (lowest index wins under
// the fixed and sticky policies), exactly as on the modeled bus.
type Master struct {
	// Name labels the master in validation paths and reports; empty names
	// canonicalize to "m<index>".
	Name string `json:"name,omitempty"`
	// Default marks the paper's "simple default master": a port that never
	// requests the bus and drives IDLE whenever granted. At most one
	// master may be the default, and it cannot carry a workload hint.
	Default bool `json:"default,omitempty"`
	// Workload optionally carries this master's traffic. Hints are
	// all-or-none across the active masters: mixing hinted and unhinted
	// masters is a validation error (E_PARTIAL_WORKLOAD).
	Workload *Workload `json:"workload,omitempty"`
}

// Slave is one bus slave with its wait-state count and the explicit
// address regions that decode to it.
type Slave struct {
	// Name labels the slave in validation paths; empty names canonicalize
	// to "s<index>".
	Name string `json:"name,omitempty"`
	// Waits is the number of wait states the slave inserts per transfer.
	Waits int `json:"waits,omitempty"`
	// Regions are the address ranges decoded to this slave. A slave with
	// no regions is unreachable (E_UNREACHABLE_SLAVE).
	Regions []AddrRange `json:"regions"`
}

// Topology is the declarative description of an AHB system. The zero
// value is invalid (no masters, no slaves); Canonical fills the clock,
// width, policy and naming defaults, and Validate checks the result
// against the ERC rule set.
type Topology struct {
	// Name labels the topology in reports; purely cosmetic.
	Name string `json:"name,omitempty"`
	// ClockPeriodPS is the bus clock period in picoseconds; 0 means the
	// paper's 10000 (100 MHz).
	ClockPeriodPS uint64 `json:"clock_period_ps,omitempty"`
	// DataWidth is the bus data width in bits (8, 16 or 32); 0 means 32.
	DataWidth int `json:"data_width,omitempty"`
	// Policy is the arbitration policy: "sticky" (default), "fixed" or
	// "rr".
	Policy string `json:"policy,omitempty"`
	// Masters in priority order (index = port = priority).
	Masters []Master `json:"masters"`
	// Slaves in port order.
	Slaves []Slave `json:"slaves"`
}

// Counts is the count-based legacy description: the fields of
// core.SystemConfig and the serve layer's SystemSpec, which Canonicalize
// expands into an explicit Topology ("N equal slaves in equal contiguous
// regions", default master on the last port).
type Counts struct {
	// Masters is the number of workload-driven masters.
	Masters int
	// DefaultMaster appends the paper's idle default master after them.
	DefaultMaster bool
	// Slaves is the number of slaves, each owning one RegionSize-sized
	// region at index*RegionSize.
	Slaves int
	// SlaveWaits applies to every slave.
	SlaveWaits int
	// ClockPeriod is the bus clock period; 0 means 10 ns.
	ClockPeriod sim.Time
	// DataWidth is the data width in bits; 0 means 32.
	DataWidth int
	// Policy is the arbitration policy.
	Policy ahb.ArbPolicy
	// RegionSize is the bytes per slave region; 0 means 4 KB.
	RegionSize uint32
}

// Canonicalize expands a count-based description into its canonical
// topology. This is the compatibility contract the legacy API rides on:
// core.NewSystem and the serve layer's count-based SystemSpec both decode
// through here, so a count-based system and its explicit topology twin
// build byte-identical simulations and share one canonical cache key.
func Canonicalize(c Counts) Topology {
	rs := c.RegionSize
	if rs == 0 {
		rs = DefaultRegionSize
	}
	t := Topology{
		ClockPeriodPS: uint64(c.ClockPeriod / sim.Picosecond),
		DataWidth:     c.DataWidth,
		Policy:        c.Policy.String(),
	}
	for m := 0; m < c.Masters; m++ {
		t.Masters = append(t.Masters, Master{})
	}
	if c.DefaultMaster {
		t.Masters = append(t.Masters, Master{Default: true})
	}
	for s := 0; s < c.Slaves; s++ {
		t.Slaves = append(t.Slaves, Slave{
			Waits:   c.SlaveWaits,
			Regions: []AddrRange{{Start: uint32(s) * rs, Size: rs}},
		})
	}
	return t.Canonical()
}

// Canonical returns the normalized deep copy every consumer (builder,
// validator, canonical hash) operates on: clock, width, policy, pattern
// and naming defaults applied, workload address windows defaulted to the
// topology's mapped span, and each slave's region list sorted by start
// address. Canonical is idempotent, and two topologies with the same
// canonical form build identical systems — which is what lets the
// engine's CanonicalKey hash the canonical form directly.
func (t Topology) Canonical() Topology {
	c := t
	if c.ClockPeriodPS == 0 {
		c.ClockPeriodPS = DefaultClockPeriodPS
	}
	if c.DataWidth == 0 {
		c.DataWidth = DefaultDataWidth
	}
	c.Policy = strings.ToLower(strings.TrimSpace(c.Policy))
	if c.Policy == "" {
		c.Policy = ahb.PolicySticky.String()
	}
	base, size := t.AddrSpan()
	c.Masters = make([]Master, len(t.Masters))
	for i, m := range t.Masters {
		if m.Name == "" {
			m.Name = fmt.Sprintf("m%d", i)
		}
		if m.Workload != nil {
			w := *m.Workload
			if w.AddrBase == 0 && w.AddrSize == 0 {
				w.AddrBase, w.AddrSize = base, size
			}
			w.Pattern = strings.ToLower(strings.TrimSpace(w.Pattern))
			if w.Pattern == "" {
				w.Pattern = workload.PatternRandom.String()
			}
			if w.BurstBeats == 0 {
				w.BurstBeats = 1
			}
			m.Workload = &w
		}
		c.Masters[i] = m
	}
	c.Slaves = make([]Slave, len(t.Slaves))
	for i, s := range t.Slaves {
		if s.Name == "" {
			s.Name = fmt.Sprintf("s%d", i)
		}
		s.Regions = append([]AddrRange(nil), s.Regions...)
		sort.SliceStable(s.Regions, func(a, b int) bool {
			return s.Regions[a].Start < s.Regions[b].Start
		})
		c.Slaves[i] = s
	}
	return c
}

// ClockPeriod returns the bus clock period as simulated time.
func (t *Topology) ClockPeriod() sim.Time {
	ps := t.ClockPeriodPS
	if ps == 0 {
		ps = DefaultClockPeriodPS
	}
	return sim.Time(ps) * sim.Picosecond
}

// ArbPolicy parses the topology's arbitration policy.
func (t *Topology) ArbPolicy() (ahb.ArbPolicy, error) {
	p := strings.ToLower(strings.TrimSpace(t.Policy))
	if p == "" {
		return ahb.PolicySticky, nil
	}
	return ahb.ParsePolicy(p)
}

// ActiveMasters counts the workload-driven (non-default) masters.
func (t *Topology) ActiveMasters() int {
	n := 0
	for _, m := range t.Masters {
		if !m.Default {
			n++
		}
	}
	return n
}

// HasDefaultMaster reports whether a master is marked as the default.
func (t *Topology) HasDefaultMaster() bool {
	for _, m := range t.Masters {
		if m.Default {
			return true
		}
	}
	return false
}

// DefaultMasterIndex returns the port granted when nobody requests: the
// first master marked Default, else the last master (matching the legacy
// count-based construction, where the bus parks on the last port).
func (t *Topology) DefaultMasterIndex() int {
	for i, m := range t.Masters {
		if m.Default {
			return i
		}
	}
	return len(t.Masters) - 1
}

// MaxWaits returns the maximum wait-state count across slaves.
func (t *Topology) MaxWaits() int {
	w := 0
	for _, s := range t.Slaves {
		if s.Waits > w {
			w = s.Waits
		}
	}
	return w
}

// AddrSpan returns the [base, base+size) window covering every mapped
// region, or (0, 0) for an empty address map. Workload hints without an
// explicit address window default to this span.
func (t *Topology) AddrSpan() (base, size uint32) {
	lo, hi := uint64(1)<<32, uint64(0)
	for _, s := range t.Slaves {
		for _, r := range s.Regions {
			if r.Size == 0 {
				continue
			}
			if uint64(r.Start) < lo {
				lo = uint64(r.Start)
			}
			if r.End() > hi {
				hi = r.End()
			}
		}
	}
	if hi <= lo {
		return 0, 0
	}
	span := hi - lo
	if span > uint64(^uint32(0)) {
		span = uint64(^uint32(0))
	}
	return uint32(lo), uint32(span)
}

// Regions flattens the per-slave address maps into the bus decoder's
// region list: slaves in port order, each slave's regions in canonical
// (start-sorted) order. For a count-canonicalized topology this
// reproduces the legacy "one region per slave at index*size" list
// exactly.
func (t *Topology) Regions() []ahb.Region {
	var out []ahb.Region
	for si, s := range t.Slaves {
		for _, r := range s.Regions {
			out = append(out, ahb.Region{Start: r.Start, Size: r.Size, Slave: si})
		}
	}
	return out
}

// Workloads returns the workload configurations carried by the active
// masters in port order, or nil when the topology carries no hints.
// Validation guarantees hints are all-or-none across active masters and
// individually well-formed, so on a validated topology the error is nil.
func (t *Topology) Workloads() ([]workload.Config, error) {
	var out []workload.Config
	for i, m := range t.Masters {
		if m.Default || m.Workload == nil {
			continue
		}
		cfg, err := m.Workload.Config()
		if err != nil {
			return nil, fmt.Errorf("topo: masters[%d] workload: %w", i, err)
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Load parses a topology from JSON, rejecting unknown fields so typos in
// hand-written files fail loudly instead of silently meaning defaults.
func Load(data []byte) (*Topology, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	return &t, nil
}

// LoadFile reads and parses a topology JSON file.
func LoadFile(path string) (*Topology, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Load(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
