package topo

import (
	"reflect"
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/sim"
)

func paperCounts() Counts {
	return Counts{
		Masters:       2,
		DefaultMaster: true,
		Slaves:        3,
		ClockPeriod:   10 * sim.Nanosecond,
		DataWidth:     32,
		Policy:        ahb.PolicySticky,
	}
}

func TestCanonicalizeCounts(t *testing.T) {
	tp := Canonicalize(paperCounts())
	if len(tp.Masters) != 3 {
		t.Fatalf("masters=%d, want 3 (2 active + default)", len(tp.Masters))
	}
	if !tp.Masters[2].Default || tp.Masters[0].Default || tp.Masters[1].Default {
		t.Errorf("default master must be the last port: %+v", tp.Masters)
	}
	if tp.DefaultMasterIndex() != 2 {
		t.Errorf("DefaultMasterIndex=%d, want 2", tp.DefaultMasterIndex())
	}
	if len(tp.Slaves) != 3 {
		t.Fatalf("slaves=%d, want 3", len(tp.Slaves))
	}
	for i, s := range tp.Slaves {
		want := AddrRange{Start: uint32(i) * DefaultRegionSize, Size: DefaultRegionSize}
		if len(s.Regions) != 1 || s.Regions[0] != want {
			t.Errorf("slave %d regions=%v, want [%v]", i, s.Regions, want)
		}
	}
	if tp.ClockPeriodPS != 10_000 {
		t.Errorf("ClockPeriodPS=%d, want 10000", tp.ClockPeriodPS)
	}
	if tp.ClockPeriod() != 10*sim.Nanosecond {
		t.Errorf("ClockPeriod()=%v, want 10ns", tp.ClockPeriod())
	}
	if base, size := tp.AddrSpan(); base != 0 || size != 3*DefaultRegionSize {
		t.Errorf("AddrSpan=(%#x,%#x), want (0,%#x)", base, size, 3*DefaultRegionSize)
	}
	if tp.ActiveMasters() != 2 || !tp.HasDefaultMaster() {
		t.Errorf("ActiveMasters=%d HasDefaultMaster=%v", tp.ActiveMasters(), tp.HasDefaultMaster())
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	tp := Topology{
		Name:   "x",
		Policy: " Sticky ",
		Masters: []Master{
			{Workload: &Workload{Seed: 1, Sequences: 2, PairsMin: 1, PairsMax: 2}},
			{Default: true},
		},
		Slaves: []Slave{
			{Regions: []AddrRange{{Start: 0x2000, Size: 0x1000}, {Start: 0x0000, Size: 0x1000}}},
		},
	}
	c1 := tp.Canonical()
	c2 := c1.Canonical()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("Canonical not idempotent:\n%+v\nvs\n%+v", c1, c2)
	}
	if c1.Policy != "sticky" || c1.DataWidth != DefaultDataWidth || c1.ClockPeriodPS != DefaultClockPeriodPS {
		t.Errorf("defaults not applied: %+v", c1)
	}
	if c1.Masters[0].Name != "m0" || c1.Slaves[0].Name != "s0" {
		t.Errorf("names not canonicalized: %q %q", c1.Masters[0].Name, c1.Slaves[0].Name)
	}
	if c1.Slaves[0].Regions[0].Start != 0 {
		t.Errorf("regions not sorted by start: %v", c1.Slaves[0].Regions)
	}
	// Workload address window defaults to the mapped span; pattern and
	// burst get their defaults.
	w := c1.Masters[0].Workload
	if w.AddrBase != 0 || w.AddrSize != 0x3000 || w.Pattern != "random" || w.BurstBeats != 1 {
		t.Errorf("workload defaults: %+v", w)
	}
	// The input must not be mutated (Canonical deep-copies).
	if tp.Masters[0].Name != "" || tp.Slaves[0].Regions[0].Start != 0x2000 {
		t.Errorf("Canonical mutated its receiver: %+v", tp)
	}
}

func TestRegionsFlattening(t *testing.T) {
	tp := Canonicalize(Counts{Masters: 1, Slaves: 2, RegionSize: 0x800})
	want := []ahb.Region{
		{Start: 0x0000, Size: 0x800, Slave: 0},
		{Start: 0x0800, Size: 0x800, Slave: 1},
	}
	if got := tp.Regions(); !reflect.DeepEqual(got, want) {
		t.Errorf("Regions=%v, want %v", got, want)
	}
}

func TestWorkloadsAllOrNone(t *testing.T) {
	tp := Topology{
		Masters: []Master{
			{Workload: &Workload{Seed: 7, Sequences: 3, PairsMin: 1, PairsMax: 4}},
			{Workload: &Workload{Seed: 8, Sequences: 3, PairsMin: 1, PairsMax: 4}},
		},
		Slaves: []Slave{{Regions: []AddrRange{{Start: 0, Size: 0x1000}}}},
	}.Canonical()
	cfgs, err := tp.Workloads()
	if err != nil {
		t.Fatalf("Workloads: %v", err)
	}
	if len(cfgs) != 2 || cfgs[0].Seed != 7 || cfgs[1].Seed != 8 {
		t.Fatalf("Workloads=%+v", cfgs)
	}
	if cfgs[0].AddrSize != 0x1000 {
		t.Errorf("hint window must default to the mapped span: %+v", cfgs[0])
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load([]byte(`{"masters":[{}],"slaves":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	tp, err := Load([]byte(`{"masters":[{},{"default":true}],"slaves":[{"regions":[{"start":0,"size":4096}]}]}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tp.Masters) != 2 || len(tp.Slaves) != 1 {
		t.Fatalf("Load parsed %+v", tp)
	}
}

func TestAddrSpanEmptyAndWrap(t *testing.T) {
	var tp Topology
	if base, size := tp.AddrSpan(); base != 0 || size != 0 {
		t.Errorf("empty AddrSpan=(%d,%d), want (0,0)", base, size)
	}
	full := Topology{Slaves: []Slave{{Regions: []AddrRange{{Start: 0, Size: ^uint32(0) &^ 1023}}}}}
	if _, size := full.AddrSpan(); size == 0 {
		t.Error("near-full span must not collapse to zero")
	}
}
