package topo

import (
	"strings"
	"testing"
)

// validTopo returns an ERC-clean, warning-free base the rule tests
// mutate one aspect of at a time.
func validTopo() Topology {
	return Topology{
		Masters: []Master{{}, {}, {Default: true}},
		Slaves: []Slave{
			{Regions: []AddrRange{{Start: 0x0000, Size: 0x1000}}},
			{Regions: []AddrRange{{Start: 0x1000, Size: 0x1000}}},
		},
	}
}

func codes(errs []Error) []Code {
	out := make([]Code, len(errs))
	for i, e := range errs {
		out[i] = e.Code
	}
	return out
}

func hasErr(t *testing.T, tp Topology, want Code) Error {
	t.Helper()
	errs, _ := Validate(tp)
	for _, e := range errs {
		if e.Code == want {
			return e
		}
	}
	t.Fatalf("Validate: want error code %s, got %v", want, codes(errs))
	return Error{}
}

func hasWarn(t *testing.T, tp Topology, want Code) Warning {
	t.Helper()
	errs, warns := Validate(tp)
	if len(errs) > 0 {
		t.Fatalf("Validate: unexpected errors %v", codes(errs))
	}
	for _, w := range warns {
		if w.Code == want {
			return w
		}
	}
	t.Fatalf("Validate: want warning code %s, got %+v", want, warns)
	return Warning{}
}

func TestValidateCleanBase(t *testing.T) {
	errs, warns := Validate(validTopo())
	if len(errs) != 0 || len(warns) != 0 {
		t.Fatalf("base topology must be clean: errs=%v warns=%+v", codes(errs), warns)
	}
}

func TestRuleNoMaster(t *testing.T) {
	tp := validTopo()
	tp.Masters = nil
	hasErr(t, tp, ErrNoMaster)
	// A default-only system has no traffic source either.
	tp.Masters = []Master{{Default: true}}
	hasErr(t, tp, ErrNoMaster)
}

func TestRuleNoSlave(t *testing.T) {
	tp := validTopo()
	tp.Slaves = nil
	hasErr(t, tp, ErrNoSlave)
}

func TestRuleTooManyMasters(t *testing.T) {
	tp := validTopo()
	tp.Masters = make([]Master, MaxPorts+1)
	hasErr(t, tp, ErrTooManyMasters)
}

func TestRuleTooManySlaves(t *testing.T) {
	tp := validTopo()
	for i := 0; i <= MaxPorts; i++ {
		tp.Slaves = append(tp.Slaves, Slave{
			Regions: []AddrRange{{Start: uint32(0x10000 + i*0x400), Size: 0x400}},
		})
	}
	hasErr(t, tp, ErrTooManySlaves)
}

func TestRuleBadClock(t *testing.T) {
	tp := validTopo()
	tp.ClockPeriodPS = 1 // below the kernel's 2 ps minimum
	e := hasErr(t, tp, ErrBadClock)
	if e.Path != "clock_period_ps" {
		t.Errorf("path=%q, want clock_period_ps", e.Path)
	}
	tp.ClockPeriodPS = 2_000_000_000_000 // above one second
	hasErr(t, tp, ErrBadClock)
}

func TestRuleBadWidth(t *testing.T) {
	tp := validTopo()
	tp.DataWidth = 24
	hasErr(t, tp, ErrBadWidth)
}

func TestRuleBadPolicy(t *testing.T) {
	tp := validTopo()
	tp.Policy = "coinflip"
	hasErr(t, tp, ErrBadPolicy)
}

func TestRuleBadWaits(t *testing.T) {
	tp := validTopo()
	tp.Slaves[0].Waits = -1
	hasErr(t, tp, ErrBadWaits)
}

func TestRuleDefaultMasterConflict(t *testing.T) {
	tp := validTopo()
	tp.Masters = []Master{{}, {Default: true}, {Default: true}}
	hasErr(t, tp, ErrDefaultConflict)
}

func TestRuleDefaultMasterWorkload(t *testing.T) {
	tp := validTopo()
	tp.Masters[2].Workload = &Workload{Seed: 1, Sequences: 1, PairsMin: 1, PairsMax: 1}
	hasErr(t, tp, ErrDefaultWorkload)
}

func TestRulePartialWorkload(t *testing.T) {
	tp := validTopo()
	tp.Masters[0].Workload = &Workload{Seed: 1, Sequences: 1, PairsMin: 1, PairsMax: 1}
	hasErr(t, tp, ErrPartialWorkload)
}

func TestRuleBadWorkload(t *testing.T) {
	tp := validTopo()
	bad := &Workload{Seed: 1, Sequences: 0, PairsMin: 1, PairsMax: 1} // Sequences must be >= 1
	tp.Masters[0].Workload = bad
	tp.Masters[1].Workload = bad
	e := hasErr(t, tp, ErrBadWorkload)
	if !strings.Contains(e.Path, "masters[0].workload") {
		t.Errorf("path=%q, want masters[0].workload", e.Path)
	}
	// An unknown pattern is the wire-level variant of the same rule.
	tp = validTopo()
	pat := &Workload{Seed: 1, Sequences: 1, PairsMin: 1, PairsMax: 1, Pattern: "fractal"}
	tp.Masters[0].Workload = pat
	tp.Masters[1].Workload = pat
	hasErr(t, tp, ErrBadWorkload)
}

func TestRuleRegionEmpty(t *testing.T) {
	tp := validTopo()
	tp.Slaves[0].Regions = []AddrRange{{Start: 0, Size: 0}}
	hasErr(t, tp, ErrRegionEmpty)
}

func TestRuleRegionWrap(t *testing.T) {
	tp := validTopo()
	tp.Slaves[0].Regions = []AddrRange{{Start: ^uint32(0) - 1023, Size: 2048}}
	hasErr(t, tp, ErrRegionWrap)
}

func TestRuleRegion1KB(t *testing.T) {
	tp := validTopo()
	tp.Slaves[0].Regions = []AddrRange{{Start: 512, Size: 0x1000}} // misaligned start
	hasErr(t, tp, ErrRegion1KB)
	tp = validTopo()
	tp.Slaves[0].Regions = []AddrRange{{Start: 0, Size: 1536}} // non-multiple size
	e := hasErr(t, tp, ErrRegion1KB)
	if e.Ref == "" {
		t.Error("the 1 KB rule must carry its spec reference")
	}
}

func TestRuleAddrOverlap(t *testing.T) {
	tp := validTopo()
	tp.Slaves[1].Regions = []AddrRange{{Start: 0x0800, Size: 0x1000}} // overlaps slave 0
	e := hasErr(t, tp, ErrAddrOverlap)
	if !strings.Contains(e.Path, "regions") {
		t.Errorf("overlap path=%q, want a region path", e.Path)
	}
	// A region nested inside a larger one still flags later overlaps: the
	// frontier keeps the furthest-reaching region.
	tp = validTopo()
	tp.Slaves[0].Regions = []AddrRange{{Start: 0, Size: 0x4000}}
	tp.Slaves[1].Regions = []AddrRange{
		{Start: 0x0400, Size: 0x400}, // nested in slave 0
		{Start: 0x3C00, Size: 0x400}, // still inside slave 0's reach
	}
	errs, _ := Validate(tp)
	n := 0
	for _, err := range errs {
		if err.Code == ErrAddrOverlap {
			n++
		}
	}
	if n != 2 {
		t.Errorf("nested overlaps flagged %d times, want 2: %v", n, codes(errs))
	}
}

func TestRuleUnreachableSlave(t *testing.T) {
	tp := validTopo()
	tp.Slaves[1].Regions = nil
	hasErr(t, tp, ErrUnreachableSlave)
}

func TestWarnAddrGap(t *testing.T) {
	tp := validTopo()
	tp.Slaves[1].Regions = []AddrRange{{Start: 0x4000, Size: 0x1000}} // hole at [0x1000,0x4000)
	w := hasWarn(t, tp, WarnAddrGap)
	if !strings.Contains(w.Detail, "12288") {
		t.Errorf("gap size missing from detail: %q", w.Detail)
	}
}

func TestWarnOddClock(t *testing.T) {
	tp := validTopo()
	tp.ClockPeriodPS = 10_001
	hasWarn(t, tp, WarnOddClock)
}

func TestWarnNoDefaultMaster(t *testing.T) {
	tp := validTopo()
	tp.Masters = []Master{{}, {}}
	hasWarn(t, tp, WarnNoDefaultMaster)
}

func TestCheckFoldsErrors(t *testing.T) {
	if err := Check(validTopo()); err != nil {
		t.Fatalf("Check on valid topology: %v", err)
	}
	tp := validTopo()
	tp.Slaves = nil
	tp.Masters = nil
	err := Check(tp)
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("Check must return *ValidationError, got %T (%v)", err, err)
	}
	if len(ve.Errors) < 2 {
		t.Errorf("want both E_NO_MASTER and E_NO_SLAVE, got %v", codes(ve.Errors))
	}
	if ve.Error() == "" || !strings.Contains(ve.Error(), "topo:") {
		t.Errorf("Error()=%q", ve.Error())
	}
}

func TestValidateDeterministicOrder(t *testing.T) {
	tp := validTopo()
	tp.Slaves = nil
	tp.Masters = nil
	a, _ := Validate(tp)
	b, _ := Validate(tp)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("finding %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
