// Fuzz coverage for the trust boundary the topology layer guards: the
// serving daemon feeds untrusted JSON through Load → Validate → (when
// clean) NewSystemTopo. The target enforces the layer's two contracts on
// arbitrary input: decoding and validating never panic, and a topology
// the ERC pass accepts always builds. The external test package breaks
// the import cycle (core imports topo).
package topo_test

import (
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/topo"
)

func FuzzTopologyValidate(f *testing.F) {
	seeds := []string{
		// The paper system in explicit form.
		`{"masters":[{},{},{"default":true}],"slaves":[
			{"regions":[{"start":0,"size":4096}]},
			{"regions":[{"start":4096,"size":4096}]},
			{"regions":[{"start":8192,"size":4096}]}]}`,
		// Non-uniform map with a gap and per-slave waits.
		`{"name":"nu","clock_period_ps":8000,"data_width":16,"policy":"rr",
			"masters":[{"name":"cpu"},{"default":true}],
			"slaves":[{"waits":2,"regions":[{"start":0,"size":8192}]},
			          {"waits":0,"regions":[{"start":16384,"size":1024}]}]}`,
		// Workload hints.
		`{"masters":[{"workload":{"seed":1,"sequences":2,"pairs_min":1,"pairs_max":3}}],
			"slaves":[{"regions":[{"start":0,"size":4096}]}]}`,
		// Broken shapes: overlap, misalignment, empty system, bad enums.
		`{"masters":[{}],"slaves":[{"regions":[{"start":0,"size":4096}]},{"regions":[{"start":2048,"size":4096}]}]}`,
		`{"masters":[{}],"slaves":[{"regions":[{"start":100,"size":300}]}]}`,
		`{"masters":[],"slaves":[]}`,
		`{"policy":"coinflip","data_width":7,"clock_period_ps":1,"masters":[{"default":true},{"default":true}],"slaves":[{}]}`,
		`{"masters":[{"workload":{"pattern":"fractal"}}],"slaves":[{"waits":-3,"regions":[{"start":4294966272,"size":4096}]}]}`,
		`null`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, err := topo.Load(data)
		if err != nil {
			return // malformed JSON is rejected, never panics
		}
		errs, _ := topo.Validate(*tp)
		if len(errs) > 0 {
			// Rejected topologies must also be rejected by the builder, and
			// with the same structured error type.
			if _, err := core.NewSystemTopo(*tp); err == nil {
				t.Fatalf("Validate rejected (%v) but NewSystemTopo built: %s", errs[0], data)
			}
			return
		}
		// The acceptance contract: every ERC-clean topology builds.
		sys, err := core.NewSystemTopo(*tp)
		if err != nil {
			t.Fatalf("ERC-clean topology failed to build: %v\ninput: %s", err, data)
		}
		if got := len(sys.Masters) + map[bool]int{true: 1}[sys.Default != nil]; got != len(sys.Topo.Masters) {
			t.Fatalf("built %d masters from %d declared", got, len(sys.Topo.Masters))
		}
	})
}
