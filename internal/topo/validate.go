package topo

import (
	"fmt"
	"sort"

	"ahbpower/internal/sim"
)

// Code is a typed ERC rule identifier. Error codes start with "E_",
// warning codes with "W_". Codes are stable API: tests, clients and the
// serving layer's 400 bodies match on them, never on message text.
type Code string

// ERC error codes. Each rejects a topology NewSystemTopo would either
// fail to build or build into a system that silently misbehaves.
const (
	// ErrNoMaster: no workload-driven master (a default-only or empty
	// master list cannot generate traffic).
	ErrNoMaster Code = "E_NO_MASTER"
	// ErrNoSlave: empty slave list.
	ErrNoSlave Code = "E_NO_SLAVE"
	// ErrTooManyMasters: more ports than the AHB HMASTER encoding allows.
	ErrTooManyMasters Code = "E_TOO_MANY_MASTERS"
	// ErrTooManySlaves: more slaves than the AHB select fabric allows.
	ErrTooManySlaves Code = "E_TOO_MANY_SLAVES"
	// ErrBadClock: clock period below the kernel's 2 ps minimum or above
	// one second.
	ErrBadClock Code = "E_BAD_CLOCK"
	// ErrBadWidth: data width other than 8, 16 or 32 bits.
	ErrBadWidth Code = "E_BAD_WIDTH"
	// ErrBadPolicy: unknown arbitration policy name.
	ErrBadPolicy Code = "E_BAD_POLICY"
	// ErrBadWaits: negative per-slave wait-state count.
	ErrBadWaits Code = "E_BAD_WAITS"
	// ErrDefaultConflict: more than one master marked as the default.
	ErrDefaultConflict Code = "E_DEFAULT_MASTER_CONFLICT"
	// ErrDefaultWorkload: a workload hint on the default master, which
	// drives IDLE forever and can never issue it.
	ErrDefaultWorkload Code = "E_DEFAULT_MASTER_WORKLOAD"
	// ErrPartialWorkload: some but not all active masters carry hints.
	ErrPartialWorkload Code = "E_PARTIAL_WORKLOAD"
	// ErrBadWorkload: a malformed per-master workload hint.
	ErrBadWorkload Code = "E_BAD_WORKLOAD"
	// ErrRegionEmpty: zero-size address region.
	ErrRegionEmpty Code = "E_REGION_EMPTY"
	// ErrRegionWrap: region extends past the top of the 32-bit space.
	ErrRegionWrap Code = "E_REGION_WRAP"
	// ErrRegion1KB: region start or size not a multiple of 1 KB.
	ErrRegion1KB Code = "E_REGION_1KB"
	// ErrAddrOverlap: two regions decode the same address.
	ErrAddrOverlap Code = "E_ADDR_OVERLAP"
	// ErrUnreachableSlave: slave with no address region.
	ErrUnreachableSlave Code = "E_UNREACHABLE_SLAVE"
)

// ERC warning codes: legal topologies with consequences the submitter
// probably wants to know about.
const (
	// WarnAddrGap: unmapped hole between mapped regions; accesses there
	// get the default slave's two-cycle ERROR response.
	WarnAddrGap Code = "W_ADDR_GAP"
	// WarnOddClock: odd clock period; the compiled execution backend will
	// fall back to the event kernel (sim.Flat requires an even period).
	WarnOddClock Code = "W_ODD_CLOCK"
	// WarnNoDefaultMaster: no master marked default; the bus parks on the
	// last listed master when idle, as in the legacy count-based API.
	WarnNoDefaultMaster Code = "W_NO_DEFAULT_MASTER"
)

// Spec-rule references attached to findings.
const (
	refPorts       = "AMBA 2.0 AHB §3.1 (16-port interconnect limit)"
	ref1KB         = "AMBA 2.0 AHB §3.9 (1 KB slave granularity; bursts must not cross a 1 KB boundary)"
	refDecode      = "AMBA 2.0 AHB §3.6 (central decoder: one slave per address)"
	refDefaultMstr = "AMBA 2.0 AHB §3.11.2 (default master drives IDLE transfers)"
	refDefaultSlv  = "AMBA 2.0 AHB §3.6.1 (default slave responds ERROR to undecoded non-IDLE transfers)"
	refWidth       = "AMBA 2.0 AHB §6.4 (supported data-bus widths)"
	refFlat        = "DESIGN.md §9 (sim.Flat even-period contract)"
)

// Error is one ERC rule violation: a typed code, the component path it
// anchors to ("slaves[2].regions[0]"), a human-readable detail and the
// spec rule it enforces. Error is the wire form of the serving layer's
// structured 400 bodies.
type Error struct {
	Code   Code   `json:"code"`
	Path   string `json:"path"`
	Detail string `json:"detail"`
	Ref    string `json:"ref,omitempty"`
}

// Error implements the error interface.
func (e Error) Error() string {
	return fmt.Sprintf("%s at %s: %s", e.Code, e.Path, e.Detail)
}

// Warning is a non-fatal ERC finding with the same structure as Error.
type Warning struct {
	Code   Code   `json:"code"`
	Path   string `json:"path"`
	Detail string `json:"detail"`
	Ref    string `json:"ref,omitempty"`
}

// String formats the warning like Error.Error.
func (w Warning) String() string {
	return fmt.Sprintf("%s at %s: %s", w.Code, w.Path, w.Detail)
}

// ValidationError aggregates a failed ERC pass into one error value.
// core.NewSystemTopo returns it for invalid topologies, and the serving
// layer unwraps it (errors.As) into structured 400 bodies.
type ValidationError struct {
	Errors   []Error
	Warnings []Warning
}

// Error summarizes the findings; the first error carries the headline.
func (e *ValidationError) Error() string {
	if len(e.Errors) == 0 {
		return "topo: validation failed"
	}
	if len(e.Errors) == 1 {
		return fmt.Sprintf("topo: %v", e.Errors[0])
	}
	return fmt.Sprintf("topo: %d ERC errors (first: %v)", len(e.Errors), e.Errors[0])
}

// Validate runs the ERC compliance pass over the canonical form of the
// topology and returns every rule violation and advisory finding, in a
// deterministic order (masters, globals, slaves, address map). A
// topology with no errors is guaranteed to build: NewSystemTopo cannot
// fail on it (the fuzz harness enforces exactly this property).
func Validate(t Topology) ([]Error, []Warning) {
	t = t.Canonical()
	var errs []Error
	var warns []Warning

	// Masters: at least one active, at most one default, hints all-or-none.
	active, hinted := 0, 0
	defaults := []int{}
	for i := range t.Masters {
		m := &t.Masters[i]
		path := fmt.Sprintf("masters[%d]", i)
		if m.Default {
			defaults = append(defaults, i)
			if m.Workload != nil {
				errs = append(errs, Error{ErrDefaultWorkload, path,
					fmt.Sprintf("default master %q drives IDLE forever and cannot carry a workload hint", m.Name),
					refDefaultMstr})
			}
			continue
		}
		active++
		if m.Workload == nil {
			continue
		}
		hinted++
		cfg, err := m.Workload.Config()
		if err == nil {
			err = cfg.Validate()
		}
		if err != nil {
			errs = append(errs, Error{ErrBadWorkload, path + ".workload", err.Error(), ""})
		}
	}
	if active == 0 {
		errs = append(errs, Error{ErrNoMaster, "masters",
			"no workload-driven master: a bus with no active masters generates no traffic", ""})
	}
	if len(defaults) > 1 {
		errs = append(errs, Error{ErrDefaultConflict, fmt.Sprintf("masters[%d]", defaults[1]),
			fmt.Sprintf("masters %v are all marked default; at most one port may be the default master", defaults),
			refDefaultMstr})
	}
	if len(defaults) == 0 && len(t.Masters) > 0 {
		warns = append(warns, Warning{WarnNoDefaultMaster, "masters",
			fmt.Sprintf("no default master: the bus parks on the last master %q when nobody requests", t.Masters[len(t.Masters)-1].Name),
			refDefaultMstr})
	}
	if hinted > 0 && hinted < active {
		errs = append(errs, Error{ErrPartialWorkload, "masters",
			fmt.Sprintf("%d of %d active masters carry workload hints; hints are all-or-none", hinted, active), ""})
	}
	if len(t.Masters) > MaxPorts {
		errs = append(errs, Error{ErrTooManyMasters, "masters",
			fmt.Sprintf("%d master ports, limit %d", len(t.Masters), MaxPorts), refPorts})
	}

	// Globals: clock, width, policy.
	period := t.ClockPeriod()
	switch {
	case period < 2*sim.Picosecond:
		errs = append(errs, Error{ErrBadClock, "clock_period_ps",
			fmt.Sprintf("period %d ps is below the kernel's 2 ps minimum", t.ClockPeriodPS), ""})
	case period > sim.Second:
		errs = append(errs, Error{ErrBadClock, "clock_period_ps",
			fmt.Sprintf("period %d ps exceeds one second", t.ClockPeriodPS), ""})
	case period%2 != 0:
		warns = append(warns, Warning{WarnOddClock, "clock_period_ps",
			fmt.Sprintf("odd period %d ps: the compiled execution backend will fall back to the event kernel", t.ClockPeriodPS),
			refFlat})
	}
	switch t.DataWidth {
	case 8, 16, 32:
	default:
		errs = append(errs, Error{ErrBadWidth, "data_width",
			fmt.Sprintf("data width %d, want 8, 16 or 32", t.DataWidth), refWidth})
	}
	if _, err := t.ArbPolicy(); err != nil {
		errs = append(errs, Error{ErrBadPolicy, "policy",
			fmt.Sprintf("unknown arbitration policy %q (want sticky, fixed or rr)", t.Policy), ""})
	}

	// Slaves and the address map.
	if len(t.Slaves) == 0 {
		errs = append(errs, Error{ErrNoSlave, "slaves", "no slaves: every transfer would hit the default slave's ERROR response", ""})
	}
	if len(t.Slaves) > MaxPorts {
		errs = append(errs, Error{ErrTooManySlaves, "slaves",
			fmt.Sprintf("%d slaves, limit %d", len(t.Slaves), MaxPorts), refPorts})
	}
	type tagged struct {
		r    AddrRange
		path string
		name string
	}
	var mapped []tagged
	for si := range t.Slaves {
		s := &t.Slaves[si]
		spath := fmt.Sprintf("slaves[%d]", si)
		if s.Waits < 0 {
			errs = append(errs, Error{ErrBadWaits, spath,
				fmt.Sprintf("slave %q has %d wait states, want >= 0", s.Name, s.Waits), ""})
		}
		if len(s.Regions) == 0 {
			errs = append(errs, Error{ErrUnreachableSlave, spath,
				fmt.Sprintf("slave %q has no address region and can never be selected", s.Name), refDecode})
			continue
		}
		for ri, r := range s.Regions {
			rpath := fmt.Sprintf("%s.regions[%d]", spath, ri)
			if r.Size == 0 {
				errs = append(errs, Error{ErrRegionEmpty, rpath,
					fmt.Sprintf("region %s of slave %q is empty", r, s.Name), ""})
				continue
			}
			if r.End() > 1<<32 {
				errs = append(errs, Error{ErrRegionWrap, rpath,
					fmt.Sprintf("region %s of slave %q extends past the 32-bit address space", r, s.Name), ""})
				continue
			}
			if r.Start%RegionAlign != 0 || r.Size%RegionAlign != 0 {
				errs = append(errs, Error{ErrRegion1KB, rpath,
					fmt.Sprintf("region %s of slave %q is not 1 KB aligned (start and size must be multiples of %d)", r, s.Name, RegionAlign),
					ref1KB})
			}
			mapped = append(mapped, tagged{r, rpath, s.Name})
		}
	}

	// Overlaps and interior gaps over the well-formed regions, sorted by
	// start (ties by declaration order, which keeps findings deterministic).
	sort.SliceStable(mapped, func(a, b int) bool { return mapped[a].r.Start < mapped[b].r.Start })
	for i := 1; i < len(mapped); i++ {
		prev, cur := mapped[i-1], mapped[i]
		if uint64(cur.r.Start) < prev.r.End() {
			errs = append(errs, Error{ErrAddrOverlap, cur.path,
				fmt.Sprintf("region %s of slave %q overlaps region %s of slave %q (%s)",
					cur.r, cur.name, prev.r, prev.name, prev.path),
				refDecode})
			// Keep whichever region reaches further as the frontier, so a
			// region nested inside a larger one still flags its successor.
			if prev.r.End() > cur.r.End() {
				mapped[i] = prev
			}
			continue
		}
		if gap := uint64(cur.r.Start) - prev.r.End(); gap > 0 {
			warns = append(warns, Warning{WarnAddrGap, cur.path,
				fmt.Sprintf("unmapped hole of %d bytes between %s (%s) and %s (%s): accesses there get the default slave's ERROR response",
					gap, prev.r, prev.name, cur.r, cur.name),
				refDefaultSlv})
		}
	}
	return errs, warns
}

// Check validates a topology and folds any errors into a single
// *ValidationError (nil when the topology is compliant). Warnings alone
// never fail the check; they ride along on the returned error when
// errors are present, and are discarded otherwise — call Validate
// directly to surface them.
func Check(t Topology) error {
	errs, warns := Validate(t)
	if len(errs) == 0 {
		return nil
	}
	return &ValidationError{Errors: errs, Warnings: warns}
}
