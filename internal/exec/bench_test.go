package exec_test

import (
	"context"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
)

// benchCycles is the run length of one timed benchmark iteration: long
// enough to amortize warm-up, short enough that the live workload heap
// stays small and GC scanning does not pollute the timing (sizing the
// workload to b.N directly keeps O(b.N) sequences live, and at millions
// of iterations the collector's scan time dwarfs the kernels).
const benchCycles = 10_000

// benchRun times backend.Run over fixed-length runs on fresh systems,
// with construction excluded from the timer, and reports ns per simulated
// bus cycle as the headline metric (ns/op is per benchCycles-cycle run).
func benchRun(b *testing.B, backend exec.Backend, analyzer bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := core.NewSystem(core.PaperSystem())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(benchCycles); err != nil {
			b.Fatal(err)
		}
		if analyzer {
			if _, err := core.Attach(sys, core.AnalyzerConfig{Style: core.StyleGlobal}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := backend.Run(context.Background(), sys, benchCycles); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchCycles, "ns/cycle")
}

// BenchmarkBackend compares the two execution backends on the
// static-topology paper sweep scenario — the workload the compiled
// backend exists for — with the global-style analyzer attached exactly
// as a sweep would run it. The compiled/event ns/cycle ratio on "sweep"
// is the speedup recorded in EXPERIMENTS.md.
func BenchmarkBackend(b *testing.B) {
	b.Run("event/sweep", func(b *testing.B) { benchRun(b, exec.Event(), true) })
	b.Run("compiled/sweep", func(b *testing.B) { benchRun(b, exec.Compiled(), true) })
}

// BenchmarkBackendBare measures the backends without the analyzer — the
// pure kernel-scheduling cost the flat stepper eliminates, isolated from
// the shared power-accounting work.
func BenchmarkBackendBare(b *testing.B) {
	b.Run("event/bare", func(b *testing.B) { benchRun(b, exec.Event(), false) })
	b.Run("compiled/bare", func(b *testing.B) { benchRun(b, exec.Compiled(), false) })
}
