package exec_test

import (
	"context"
	"fmt"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/tlm"
	"ahbpower/internal/workload"
)

// tlmCycles is the horizon of the transaction-level comparison. It is
// deliberately longer than benchCycles: the estimator pays a fixed
// cycle-accurate calibration prefix (cycles/16, clamped to at most 8192),
// so its speedup grows with the horizon, and the headline claim — and the
// CI gate — is about long runs, where the fast path matters.
const tlmCycles = 400_000

// tlmSweepSize is the number of seed-varied scenarios per iteration, kept
// small because every scenario simulates tlmCycles on the exact side.
const tlmSweepSize = 4

// tlmSweepWorkload is scenario i's traffic: the paper testbench sized to
// the horizon — saturating traffic, the estimator's stationary contract —
// seed-shifted per scenario like a real seed sweep.
func tlmSweepWorkload(i int) workload.Config {
	cfg := workload.PaperTestbench(0, int(tlmCycles)/100+2)
	cfg.Seed += int64(i) * 1_000_003
	return cfg
}

// benchTLMEstimate times the estimation of the seed sweep: preparation
// (traffic resolution, script generation) is excluded exactly as the
// other sweep benchmarks exclude construction, so the timed region is the
// calibration prefix plus the transaction walk. Reports ns per
// scenario-cycle, directly comparable to the serial sweep below.
func benchTLMEstimate(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	topoCfg := core.PaperSystem().Topology()
	preps := make([]*tlm.Prepared, tlmSweepSize)
	for i := range preps {
		p, err := tlm.Prepare(tlm.Spec{
			Name:      fmt.Sprintf("tlm-sweep%02d", i),
			Topo:      topoCfg,
			Analyzer:  core.AnalyzerConfig{Style: core.StyleGlobal},
			Workloads: []workload.Config{tlmSweepWorkload(i)},
			Cycles:    tlmCycles,
		})
		if err != nil {
			b.Fatal(err)
		}
		preps[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range preps {
			if _, err := p.Estimate(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tlmSweepSize)/tlmCycles, "ns/cycle")
}

// benchTLMSerial times the same sweep simulated cycle-accurately one
// scenario at a time, construction excluded exactly like benchSweepSerial,
// reporting ns per scenario-cycle.
func benchTLMSerial(b *testing.B, backend exec.Backend) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < tlmSweepSize; j++ {
			b.StopTimer()
			sys, err := core.NewSystem(core.PaperSystem())
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.LoadWorkload(tlmSweepWorkload(j)); err != nil {
				b.Fatal(err)
			}
			if _, err := core.Attach(sys, core.AnalyzerConfig{Style: core.StyleGlobal}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := backend.Run(context.Background(), sys, tlmCycles); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tlmSweepSize)/tlmCycles, "ns/cycle")
}

// BenchmarkTLMSweep is the transaction-level fast path's headline
// comparison: the same seed sweep estimated at transaction accuracy
// versus simulated cycle-accurately on the compiled backend. The
// compiled/tlm ns-per-cycle ratio is the estimator speedup recorded in
// EXPERIMENTS.md and gated (≥8x) by tools/benchgate in CI; the paired
// accuracy cost is gated separately by tools/tlmcheck.
func BenchmarkTLMSweep(b *testing.B) {
	b.Run("tlm/sweep", func(b *testing.B) { benchTLMEstimate(b) })
	b.Run("compiled/sweep", func(b *testing.B) { benchTLMSerial(b, exec.Compiled()) })
}
