package exec_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/sim"
	"ahbpower/internal/workload"
)

// FuzzBackendEquivalence derives a small random topology, workload and
// fault plan from the fuzz input and checks that the event and compiled
// backends produce identical total energy and per-block breakdowns. Any
// divergence is a scheduling bug in the flat stepper.
func FuzzBackendEquivalence(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(0), uint8(0), uint8(0), int64(1), uint8(0))
	f.Add(uint8(1), uint8(1), uint8(2), uint8(1), uint8(1), int64(42), uint8(3))
	f.Add(uint8(3), uint8(4), uint8(1), uint8(2), uint8(2), int64(-7), uint8(255))
	f.Fuzz(func(t *testing.T, nm, ns, waits, policy, pattern uint8, seed int64, faultSel uint8) {
		sys := core.SystemConfig{
			NumActiveMasters:  1 + int(nm%3),
			WithDefaultMaster: nm%2 == 0,
			NumSlaves:         1 + int(ns%4),
			SlaveWaits:        int(waits % 4),
			ClockPeriod:       10 * sim.Nanosecond,
			DataWidth:         32,
			Policy:            ahb.ArbPolicy(policy % 3),
		}
		style := core.StyleGlobal
		if pattern%2 == 1 {
			style = core.StyleLocal
		}
		wl := workload.Config{
			Seed:         seed,
			NumSequences: 20,
			PairsMin:     1,
			PairsMax:     1 + int(pattern%5),
			IdleMax:      int(waits % 7),
			AddrSize:     uint32(sys.NumSlaves) * 0x1000,
			Pattern:      workload.Pattern(pattern % 3),
			BurstBeats:   4,
		}
		var plan *fault.Plan
		if faultSel != 0 {
			kinds := []fault.Kind{fault.KindError, fault.KindRetry, fault.KindSplit,
				fault.KindWaits, fault.KindAddrFlip, fault.KindDataFlip}
			k := kinds[int(faultSel)%len(kinds)]
			plan = &fault.Plan{Seed: seed ^ int64(faultSel), Rules: []fault.Rule{
				{Kind: k, Slave: -1, Master: -1, Prob: 0.05, Retries: 1, Waits: 2, Hold: 5, Mask: 0x11},
			}}
		}
		run := func(backend string) engine.Result {
			return engine.RunOne(context.Background(), engine.Scenario{
				Name:      "fuzz",
				System:    sys,
				Analyzer:  core.AnalyzerConfig{Style: style},
				Workloads: []workload.Config{wl},
				Cycles:    600,
				Faults:    plan,
				Backend:   backend,
			})
		}
		ev := run(exec.NameEvent)
		cp := run(exec.NameCompiled)
		if (ev.Err == nil) != (cp.Err == nil) {
			t.Fatalf("error divergence: event=%v compiled=%v", ev.Err, cp.Err)
		}
		if ev.Err != nil {
			return // both rejected the configuration the same way
		}
		if cp.Backend != exec.NameCompiled {
			t.Fatalf("expected compiled execution, got %q (fallback %q)", cp.Backend, cp.BackendFallback)
		}
		if math.Float64bits(ev.Report.TotalEnergy) != math.Float64bits(cp.Report.TotalEnergy) {
			t.Fatalf("TotalEnergy: event=%g compiled=%g", ev.Report.TotalEnergy, cp.Report.TotalEnergy)
		}
		if !reflect.DeepEqual(ev.Report.BlockEnergy, cp.Report.BlockEnergy) {
			t.Fatalf("BlockEnergy diverges:\nevent:    %v\ncompiled: %v",
				ev.Report.BlockEnergy, cp.Report.BlockEnergy)
		}
		if ev.Beats != cp.Beats || !reflect.DeepEqual(ev.Counts, cp.Counts) {
			t.Fatalf("beats/counts diverge: event=%d/%v compiled=%d/%v",
				ev.Beats, ev.Counts, cp.Beats, cp.Counts)
		}
	})
}
