package exec_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/sim"
	"ahbpower/internal/workload"
)

// FuzzLaneEquivalence derives a small random topology and workload from
// the fuzz input, runs two seed-varied copies as one bit-parallel lane
// pack through the engine's runner, and checks each lane against its own
// event-backend run: identical total energy, per-block breakdowns, beats
// and monitor counters. Any divergence is a replay bug in the lane
// interpreter, the packed decoder or the analyzer transcription.
func FuzzLaneEquivalence(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(0), uint8(0), uint8(0), int64(1))
	f.Add(uint8(1), uint8(1), uint8(2), uint8(1), uint8(1), int64(42))
	f.Add(uint8(3), uint8(4), uint8(1), uint8(2), uint8(2), int64(-7))
	f.Fuzz(func(t *testing.T, nm, ns, waits, policy, pattern uint8, seed int64) {
		sys := core.SystemConfig{
			NumActiveMasters:  1 + int(nm%3),
			WithDefaultMaster: nm%2 == 0,
			NumSlaves:         1 + int(ns%4),
			SlaveWaits:        int(waits % 4),
			ClockPeriod:       10 * sim.Nanosecond,
			DataWidth:         32,
			Policy:            ahb.ArbPolicy(policy % 3),
		}
		style := core.StyleGlobal
		if pattern%2 == 1 {
			style = core.StyleLocal
		}
		mk := func(name string, s int64) engine.Scenario {
			return engine.Scenario{
				Name:     name,
				System:   sys,
				Analyzer: core.AnalyzerConfig{Style: style},
				Workloads: []workload.Config{{
					Seed:         s,
					NumSequences: 20,
					PairsMin:     1,
					PairsMax:     1 + int(pattern%5),
					IdleMax:      int(waits % 7),
					AddrSize:     uint32(sys.NumSlaves) * 0x1000,
					Pattern:      workload.Pattern(pattern % 3),
					BurstBeats:   4,
				}},
				Cycles:  600,
				Backend: exec.NameLanes,
			}
		}
		scs := []engine.Scenario{mk("lane0", seed), mk("lane1", seed^0x5a5a)}
		results := engine.NewRunner(1).Run(context.Background(), scs)
		for i, res := range results {
			ev := scs[i]
			ev.Backend = exec.NameEvent
			evr := engine.RunOne(context.Background(), ev)
			if (res.Err == nil) != (evr.Err == nil) {
				t.Fatalf("%s: error divergence: lanes=%v event=%v", scs[i].Name, res.Err, evr.Err)
			}
			if res.Err != nil {
				continue // both rejected the configuration the same way
			}
			if res.Backend != exec.NameLanes || res.Lanes != len(scs) {
				t.Fatalf("%s: expected a %d-lane pack, got backend %q (lanes %d, fallback %q)",
					scs[i].Name, len(scs), res.Backend, res.Lanes, res.BackendFallback)
			}
			if math.Float64bits(evr.Report.TotalEnergy) != math.Float64bits(res.Report.TotalEnergy) {
				t.Fatalf("%s: TotalEnergy: event=%g lanes=%g", scs[i].Name,
					evr.Report.TotalEnergy, res.Report.TotalEnergy)
			}
			if !reflect.DeepEqual(evr.Report.BlockEnergy, res.Report.BlockEnergy) {
				t.Fatalf("%s: BlockEnergy diverges:\nevent: %v\nlanes: %v", scs[i].Name,
					evr.Report.BlockEnergy, res.Report.BlockEnergy)
			}
			if evr.Beats != res.Beats || !reflect.DeepEqual(evr.Counts, res.Counts) {
				t.Fatalf("%s: beats/counts diverge: event=%d/%v lanes=%d/%v", scs[i].Name,
					evr.Beats, evr.Counts, res.Beats, res.Counts)
			}
		}
	})
}
