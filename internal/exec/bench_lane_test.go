package exec_test

import (
	"context"
	"fmt"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/lane"
	"ahbpower/internal/workload"
)

// laneSweepSize is the width of the uniform-sweep benchmark: a full lane
// pack, one scenario per bit of the packed words.
const laneSweepSize = lane.MaxLanes

// laneSweepWorkload is lane i's traffic for the uniform sweep: the paper
// testbench sized to benchCycles, seed-shifted per scenario so the lanes
// diverge the way a real seed sweep does.
func laneSweepWorkload(i int) workload.Config {
	cfg := workload.PaperTestbench(0, int(benchCycles)/100+2)
	cfg.Seed += int64(i) * 1_000_003
	return cfg
}

// laneSweepSpecs builds the 64 lane specs of the uniform sweep.
func laneSweepSpecs(analyzer bool) []lane.Spec {
	specs := make([]lane.Spec, laneSweepSize)
	topoCfg := core.PaperSystem().Topology()
	for i := range specs {
		specs[i] = lane.Spec{
			Name:         fmt.Sprintf("sweep%02d", i),
			Topo:         topoCfg,
			Analyzer:     core.AnalyzerConfig{Style: core.StyleGlobal},
			Workloads:    []workload.Config{laneSweepWorkload(i)},
			Cycles:       benchCycles,
			SkipAnalyzer: !analyzer,
		}
	}
	return specs
}

// benchLanePack times one packed execution of the 64-scenario sweep per
// iteration, with pack construction (netlist lowering, workload
// generation) excluded, and reports ns per scenario-cycle — directly
// comparable to benchRun's ns/cycle.
func benchLanePack(b *testing.B, analyzer bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pack, err := lane.BuildPack(laneSweepSpecs(analyzer))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		outs := pack.Run(context.Background())
		b.StopTimer()
		for j := range outs {
			if outs[j].Err != nil {
				b.Fatalf("lane %d: %v", j, outs[j].Err)
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(laneSweepSize)/benchCycles, "ns/cycle")
}

// benchSweepSerial times the same 64-scenario sweep run one scenario at a
// time on a conventional backend, construction excluded exactly like
// benchRun, reporting ns per scenario-cycle.
func benchSweepSerial(b *testing.B, backend exec.Backend) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < laneSweepSize; j++ {
			b.StopTimer()
			sys, err := core.NewSystem(core.PaperSystem())
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.LoadWorkload(laneSweepWorkload(j)); err != nil {
				b.Fatal(err)
			}
			if _, err := core.Attach(sys, core.AnalyzerConfig{Style: core.StyleGlobal}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := backend.Run(context.Background(), sys, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(laneSweepSize)/benchCycles, "ns/cycle")
}

// BenchmarkLaneSweep is the lane backend's headline comparison: a
// 64-scenario uniform seed sweep executed as one bit-parallel pack versus
// the same sweep run scenario-by-scenario on the compiled backend. The
// compiled/lanes ns-per-cycle ratio is the pack speedup recorded in
// EXPERIMENTS.md and gated (≥10x) by tools/benchgate in CI.
func BenchmarkLaneSweep(b *testing.B) {
	b.Run("lanes/sweep", func(b *testing.B) { benchLanePack(b, true) })
	b.Run("compiled/sweep", func(b *testing.B) { benchSweepSerial(b, exec.Compiled()) })
}

// BenchmarkLaneBare measures the packed interpreter without the analyzer
// — the per-lane stepping cost alone, isolated from the shared power
// accounting that dominates instrumented sweeps.
func BenchmarkLaneBare(b *testing.B) {
	b.Run("lanes/bare", func(b *testing.B) { benchLanePack(b, false) })
}
