// Package exec is the execution-backend seam between model construction
// and simulation. A built core.System does not care how its cycles are
// advanced; a Backend supplies that policy. Three backends exist today:
//
//   - "event": the reference discrete-event kernel (internal/sim event
//     heap, delta cycles, sensitivity-driven scheduling). Always
//     available, always exact.
//   - "compiled": a Verilator-style straight-line stepper that executes
//     a static per-cycle schedule (posedge processes in registration
//     order, then topologically ordered combinational waves) with no
//     event heap and no sensitivity bookkeeping. Bit-identical to the
//     event backend for every scenario it supports, several times
//     faster, and restricted to static topologies without delta-level
//     instrumentation.
//   - "lanes": the bit-parallel pack executor (internal/lane), which
//     evaluates up to 64 structurally compatible scenarios at once, one
//     per bit of a uint64. It does not implement Backend — it never
//     advances a core.System — so it is scheduled by the engine's
//     runner, not selected here; Select rejects the name and the engine
//     intercepts it before calling Select.
//
// Results are byte-identical across backends for supported scenarios —
// the golden equivalence suites and the backend fuzzers enforce it —
// which is why a backend hint is an execution detail and deliberately
// excluded from engine.Scenario.CanonicalKey: a cached result answers a
// scenario regardless of which backend computed it.
package exec

import (
	"context"
	"fmt"

	"ahbpower/internal/core"
	"ahbpower/internal/sim"
)

// Backend names accepted by Select and the -backend CLI flags.
const (
	// NameEvent selects the reference event-driven kernel.
	NameEvent = "event"
	// NameCompiled selects the straight-line compiled stepper, falling
	// back to the event backend (with a surfaced reason) for scenarios it
	// cannot honor.
	NameCompiled = "compiled"
	// NameAuto selects the compiled backend whenever the scenario supports
	// it and the event backend otherwise; the fallback reason is surfaced
	// the same way as for an explicit compiled request.
	NameAuto = "auto"
	// NameLanes selects the bit-parallel lane backend (internal/lane).
	// Valid as a scenario hint everywhere the other names are, but
	// resolved by the engine's lane scheduler rather than Select: lanes
	// execute whole packs of scenarios, not a single built system.
	NameLanes = "lanes"
)

// Backend advances a built system by a number of bus clock cycles. A
// Backend must preserve the execution contract the event kernel defines:
// settled-timestep observers fire once per cycle in registration order,
// cancellation stops at a cycle-slice boundary with the system resumable,
// and every supported scenario produces results bit-identical to the
// event backend's.
type Backend interface {
	// Name identifies the backend in results, metrics and logs.
	Name() string
	// Run advances sys by cycles bus cycles, honoring ctx cancellation
	// exactly like core.System.RunContext. A system must be driven by a
	// single backend for its whole lifetime.
	Run(ctx context.Context, sys *core.System, cycles uint64) error
}

// Traits captures the execution-relevant features of a scenario, so
// backend selection can happen before the system is built. The engine
// fills it from a Scenario; anything the compiled stepper cannot honor
// shows up here.
type Traits struct {
	// HasSetup marks a custom Setup hook: arbitrary construction-time code
	// may register processes or schedule events the static schedule does
	// not know about.
	HasSetup bool
	// HasDPM marks an attached dynamic-power-management estimator.
	HasDPM bool
	// DeltaInstrumented marks delta-level instrumentation (the private
	// analyzer style counts per-delta glitches through signal watchers,
	// which a one-update-per-cycle stepper would undercount).
	DeltaInstrumented bool
	// ClockPeriod is the bus clock period; the flat stepper requires an
	// even period (an odd one makes the event clock drift against the
	// nominal period, which the straight-line timestamps cannot mirror).
	ClockPeriod sim.Time
	// Checkpoint marks that the scenario requests periodic state
	// snapshots at chunk boundaries (crash-safe resume). Both
	// cycle-accurate backends honor it; the pack (lanes) and
	// transaction-level executors cannot — they carry no per-scenario
	// kernel state to snapshot — so the engine routes
	// checkpoint-requesting scenarios away from them with a surfaced
	// reason.
	Checkpoint bool
}

// Unsupported returns the reason the compiled backend cannot honor a
// scenario with these traits, or "" when it can.
func (t Traits) Unsupported() string {
	period := t.ClockPeriod
	if period < 2 {
		period = 2 // sim.NewClock clamps sub-minimum periods the same way
	}
	switch {
	case t.HasSetup:
		return "custom Setup hook"
	case t.HasDPM:
		return "DPM estimator attached"
	case t.DeltaInstrumented:
		return "delta-level (private-style) instrumentation"
	case period%2 != 0:
		return fmt.Sprintf("odd clock period %d", t.ClockPeriod)
	}
	return ""
}

// CheckpointUnsupported returns the reason a scenario with these traits
// cannot be checkpointed, or "" when checkpoint/resume is eligible.
// Eligibility is a property of the scenario, not the backend: both
// cycle-accurate backends (event and compiled) snapshot at the same
// settled chunk boundaries. A custom Setup hook may register processes
// or state the snapshot protocol cannot see, and a DPM estimator keeps
// windowed history outside the snapshot; both are rejected rather than
// silently resumed wrong. Analyzer-side ineligibility (trace recorders,
// windowed traces, activity recording) is reported separately by
// core.Analyzer.SnapshotUnsupported.
func (t Traits) CheckpointUnsupported() string {
	switch {
	case t.HasSetup:
		return "custom Setup hook"
	case t.HasDPM:
		return "DPM estimator attached"
	}
	return ""
}

// Event returns the reference event-driven backend.
func Event() Backend { return eventBackend{} }

// Compiled returns the straight-line compiled backend. Callers are
// expected to consult Traits.Unsupported first; Run fails (rather than
// silently degrading) when the built system violates the flat-execution
// contract.
func Compiled() Backend { return compiledBackend{} }

type eventBackend struct{}

func (eventBackend) Name() string { return NameEvent }

func (eventBackend) Run(ctx context.Context, sys *core.System, cycles uint64) error {
	return sys.RunContext(ctx, cycles)
}

type compiledBackend struct{}

func (compiledBackend) Name() string { return NameCompiled }

func (compiledBackend) Run(ctx context.Context, sys *core.System, cycles uint64) error {
	flat, err := sys.Bus.NewFlat()
	if err != nil {
		return fmt.Errorf("exec: compiled backend: %w", err)
	}
	return sys.RunContextStepped(ctx, cycles, flat.RunCycles)
}

// ValidName reports whether name is an accepted backend hint. The empty
// string is valid and means the default (event) backend.
func ValidName(name string) bool {
	switch name {
	case "", NameEvent, NameCompiled, NameAuto, NameLanes:
		return true
	}
	return false
}

// Select resolves a backend hint against a scenario's traits. The empty
// hint and "event" select the event backend. "compiled" and "auto" select
// the compiled backend when the traits allow it and otherwise fall back
// to the event backend, returning the surfaced fallback reason. Unknown
// hints are an error.
func Select(hint string, t Traits) (b Backend, fallbackReason string, err error) {
	switch hint {
	case "", NameEvent:
		return Event(), "", nil
	case NameCompiled, NameAuto:
		if reason := t.Unsupported(); reason != "" {
			return Event(), reason, nil
		}
		return Compiled(), "", nil
	case NameLanes:
		return nil, "", fmt.Errorf("exec: the %s backend is scheduled by the engine's runner, not selected per-system", NameLanes)
	}
	return nil, "", fmt.Errorf("exec: unknown backend %q (want %s|%s|%s|%s)", hint, NameEvent, NameCompiled, NameAuto, NameLanes)
}
