package exec_test

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/probe"
	"ahbpower/internal/sim"
	"ahbpower/internal/workload"
)

// runPair executes the same scenario on the event and compiled backends
// and returns both results. It fails the test when either run errors or
// when the compiled request fell back.
func runPair(t *testing.T, sc engine.Scenario) (ev, cp engine.Result) {
	t.Helper()
	sc.Backend = exec.NameEvent
	ev = engine.RunOne(context.Background(), sc)
	if ev.Err != nil {
		t.Fatalf("event backend: %v", ev.Err)
	}
	sc.Backend = exec.NameCompiled
	cp = engine.RunOne(context.Background(), sc)
	if cp.Err != nil {
		t.Fatalf("compiled backend: %v", cp.Err)
	}
	if cp.Backend != exec.NameCompiled {
		t.Fatalf("compiled run reported backend %q (fallback: %q)", cp.Backend, cp.BackendFallback)
	}
	if ev.Backend != exec.NameEvent {
		t.Fatalf("event run reported backend %q", ev.Backend)
	}
	return ev, cp
}

// assertIdentical compares every deterministic output of two results
// bit-for-bit. Metrics (wall-clock, delta counts) are deliberately
// excluded: they are envelope data, outside the byte-identity guarantee.
func assertIdentical(t *testing.T, ev, cp engine.Result) {
	t.Helper()
	if ev.Beats != cp.Beats {
		t.Errorf("Beats: event=%d compiled=%d", ev.Beats, cp.Beats)
	}
	if !reflect.DeepEqual(ev.Counts, cp.Counts) {
		t.Errorf("Counts diverge:\nevent:    %v\ncompiled: %v", ev.Counts, cp.Counts)
	}
	if !reflect.DeepEqual(ev.Violations, cp.Violations) {
		t.Errorf("Violations diverge:\nevent:    %v\ncompiled: %v", ev.Violations, cp.Violations)
	}
	if !reflect.DeepEqual(ev.Faults, cp.Faults) {
		t.Errorf("Faults diverge:\nevent:    %+v\ncompiled: %+v", ev.Faults, cp.Faults)
	}
	if !reflect.DeepEqual(ev.Stats, cp.Stats) {
		t.Errorf("instruction Stats diverge")
	}
	if (ev.Report == nil) != (cp.Report == nil) {
		t.Fatalf("Report presence: event=%v compiled=%v", ev.Report != nil, cp.Report != nil)
	}
	if ev.Report == nil {
		return
	}
	// Bit-exact energy first (the headline guarantee), then the full
	// report. DeepEqual on float64 is equality, which identical bit
	// patterns satisfy; energies are never NaN.
	if eb, cb := math.Float64bits(ev.Report.TotalEnergy), math.Float64bits(cp.Report.TotalEnergy); eb != cb {
		t.Errorf("TotalEnergy bits: event=%#x (%g) compiled=%#x (%g)",
			eb, ev.Report.TotalEnergy, cb, cp.Report.TotalEnergy)
	}
	if !reflect.DeepEqual(ev.Report, cp.Report) {
		t.Errorf("Report diverges:\nevent:    %+v\ncompiled: %+v", ev.Report, cp.Report)
	}
}

// TestGoldenEquivalence runs paired event/compiled scenarios across bus
// shapes, arbitration policies, analyzer styles, wait states, data widths
// and fault plans, asserting bit-identical results.
func TestGoldenEquivalence(t *testing.T) {
	type variant struct {
		name   string
		sys    core.SystemConfig
		an     core.AnalyzerConfig
		faults *fault.Plan
	}
	base := core.PaperSystem()
	variants := []variant{
		{name: "paper_sticky_global", sys: base,
			an: core.AnalyzerConfig{Style: core.StyleGlobal, TraceWindow: 1e-7}},
		{name: "paper_sticky_local", sys: base,
			an: core.AnalyzerConfig{Style: core.StyleLocal, TraceWindow: 1e-7}},
	}
	fixed := base
	fixed.Policy = ahb.PolicyFixed
	variants = append(variants, variant{name: "fixed_global", sys: fixed,
		an: core.AnalyzerConfig{Style: core.StyleGlobal}})
	rr := base
	rr.Policy = ahb.PolicyRoundRobin
	rr.NumActiveMasters = 3
	variants = append(variants, variant{name: "rr_3masters", sys: rr,
		an: core.AnalyzerConfig{Style: core.StyleGlobal}})
	waits := base
	waits.SlaveWaits = 2
	variants = append(variants, variant{name: "waits2_local", sys: waits,
		an: core.AnalyzerConfig{Style: core.StyleLocal}})
	wide := base
	wide.DataWidth = 16
	wide.NumSlaves = 4
	variants = append(variants, variant{name: "w16_4slaves", sys: wide,
		an: core.AnalyzerConfig{Style: core.StyleGlobal, RecordActivity: true}})
	// Fault plans exercise the injector processes (slave response
	// rewrites, split masking, master drive corruption) under both
	// execution models.
	faulty := base
	variants = append(variants,
		variant{name: "faults_mixed", sys: faulty,
			an: core.AnalyzerConfig{Style: core.StyleGlobal},
			faults: &fault.Plan{Seed: 99, Rules: []fault.Rule{
				{Kind: fault.KindError, Slave: -1, Master: -1, Prob: 0.02},
				{Kind: fault.KindRetry, Slave: 0, Master: -1, Prob: 0.05, Retries: 2},
				{Kind: fault.KindWaits, Slave: 1, Master: -1, Prob: 0.1, Waits: 3},
				{Kind: fault.KindDataFlip, Slave: -1, Master: 0, Prob: 0.05, Mask: 0xA5},
			}}},
		variant{name: "faults_split", sys: faulty,
			an: core.AnalyzerConfig{Style: core.StyleLocal},
			faults: &fault.Plan{Seed: 7, Rules: []fault.Rule{
				{Kind: fault.KindSplit, Slave: -1, Master: -1, Prob: 0.08, Hold: 6},
				{Kind: fault.KindAddrFlip, Slave: -1, Master: 1, Prob: 0.03, Mask: 0x3C},
			}}},
	)
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			sc := engine.Scenario{
				Name:     v.name,
				System:   v.sys,
				Analyzer: v.an,
				Cycles:   3000,
				Faults:   v.faults,
			}
			ev, cp := runPair(t, sc)
			assertIdentical(t, ev, cp)
		})
	}
}

// TestGoldenEquivalenceWorkloads pairs the backends across workload
// patterns and explicit per-master traffic.
func TestGoldenEquivalenceWorkloads(t *testing.T) {
	for _, p := range []workload.Pattern{workload.PatternRandom, workload.PatternLowActivity, workload.PatternCounter} {
		p := p
		t.Run(patternName(p), func(t *testing.T) {
			t.Parallel()
			sc := engine.Scenario{
				Name:     "wl",
				System:   core.PaperSystem(),
				Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
				Workloads: []workload.Config{{
					Seed: 17, NumSequences: 40, PairsMin: 1, PairsMax: 6,
					IdleMin: 0, IdleMax: 8, AddrSize: 0x3000,
					Pattern: p, BurstBeats: 4,
				}},
				Cycles: 2500,
			}
			ev, cp := runPair(t, sc)
			assertIdentical(t, ev, cp)
		})
	}
}

func patternName(p workload.Pattern) string {
	switch p {
	case workload.PatternLowActivity:
		return "low_activity"
	case workload.PatternCounter:
		return "counter"
	}
	return "random"
}

// TestBackendFallback checks that every unsupported feature falls back to
// the event backend with its reason surfaced, rather than failing.
func TestBackendFallback(t *testing.T) {
	base := func() engine.Scenario {
		return engine.Scenario{
			Name:     "fb",
			System:   core.PaperSystem(),
			Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
			Cycles:   200,
			Backend:  exec.NameCompiled,
		}
	}
	cases := []struct {
		name   string
		mutate func(*engine.Scenario)
		reason string
	}{
		{"setup_hook", func(sc *engine.Scenario) {
			sc.Setup = func(*core.System) error { return nil }
		}, "Setup"},
		{"dpm", func(sc *engine.Scenario) {
			sc.Analyzer.DPM = &core.DPMConfig{}
		}, "DPM"},
		{"private_style", func(sc *engine.Scenario) {
			sc.Analyzer.Style = core.StylePrivate
		}, "delta-level"},
		{"odd_period", func(sc *engine.Scenario) {
			sc.System.ClockPeriod = 7 * sim.Picosecond
		}, "odd clock period"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mutate(&sc)
			res := engine.RunOne(context.Background(), sc)
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if res.Backend != exec.NameEvent {
				t.Fatalf("backend = %q, want fallback to %q", res.Backend, exec.NameEvent)
			}
			if !strings.Contains(res.BackendFallback, tc.reason) {
				t.Fatalf("fallback reason %q does not mention %q", res.BackendFallback, tc.reason)
			}
		})
	}
	// SkipAnalyzer neutralizes analyzer-derived fallbacks: a private-style
	// config without an attached analyzer is fully supported.
	sc := base()
	sc.Analyzer.Style = core.StylePrivate
	sc.SkipAnalyzer = true
	res := engine.RunOne(context.Background(), sc)
	if res.Err != nil || res.Backend != exec.NameCompiled || res.BackendFallback != "" {
		t.Fatalf("SkipAnalyzer run: backend=%q fallback=%q err=%v", res.Backend, res.BackendFallback, res.Err)
	}
}

// TestUnknownBackendRejected checks hint validation in both Select and
// the engine path.
func TestUnknownBackendRejected(t *testing.T) {
	if _, _, err := exec.Select("turbo", exec.Traits{ClockPeriod: 10}); err == nil {
		t.Fatal("Select accepted unknown backend")
	}
	res := engine.RunOne(context.Background(), engine.Scenario{
		Name: "bad", System: core.PaperSystem(), Cycles: 10, Backend: "turbo",
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "unknown backend") {
		t.Fatalf("engine err = %v, want unknown-backend error", res.Err)
	}
	for _, ok := range []string{"", exec.NameEvent, exec.NameCompiled, exec.NameAuto} {
		if !exec.ValidName(ok) {
			t.Errorf("ValidName(%q) = false", ok)
		}
	}
	if exec.ValidName("turbo") {
		t.Error("ValidName accepted unknown backend")
	}
}

// TestCancellationParity cancels identical runs mid-flight on both
// backends and checks they stop at the same cycle-slice boundary with
// identical partial state. Cancellation is triggered from a settled-cycle
// observer, so it fires at the exact same simulated cycle under both
// execution models; the run then stops at the next chunk boundary.
func TestCancellationParity(t *testing.T) {
	const cancelAt = 700
	run := func(b exec.Backend) (cycles uint64, energy float64) {
		sys, err := core.NewSystem(core.PaperSystem())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(5000); err != nil {
			t.Fatal(err)
		}
		an, err := core.Attach(sys, core.AnalyzerConfig{Style: core.StyleGlobal})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sys.Bus.Observe(probe.Func[ahb.CycleInfo](func(ci ahb.CycleInfo) {
			if ci.Cycle == cancelAt {
				cancel()
			}
		}))
		err = b.Run(ctx, sys, 5000)
		if err != context.Canceled {
			t.Fatalf("%s: err = %v, want context.Canceled", b.Name(), err)
		}
		return sys.Bus.Cycles(), an.Report().TotalEnergy
	}
	evCycles, evEnergy := run(exec.Event())
	cpCycles, cpEnergy := run(exec.Compiled())
	if evCycles != cpCycles {
		t.Fatalf("stopped at different cycles: event=%d compiled=%d", evCycles, cpCycles)
	}
	if evCycles <= cancelAt || evCycles >= 5000 {
		t.Fatalf("expected a mid-run stop after cycle %d, got %d", cancelAt, evCycles)
	}
	if math.Float64bits(evEnergy) != math.Float64bits(cpEnergy) {
		t.Fatalf("partial energies diverge: event=%g compiled=%g", evEnergy, cpEnergy)
	}
}

// TestCompiledResumable checks that the compiled backend can be invoked
// repeatedly on one system (the chunked-run contract) with results
// identical to a single event-backend run of the total length.
func TestCompiledResumable(t *testing.T) {
	build := func() (*core.System, *core.Analyzer) {
		sys, err := core.NewSystem(core.PaperSystem())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(2000); err != nil {
			t.Fatal(err)
		}
		an, err := core.Attach(sys, core.AnalyzerConfig{Style: core.StyleGlobal})
		if err != nil {
			t.Fatal(err)
		}
		return sys, an
	}
	evSys, evAn := build()
	if err := exec.Event().Run(context.Background(), evSys, 2000); err != nil {
		t.Fatal(err)
	}
	cpSys, cpAn := build()
	cp := exec.Compiled()
	for _, slice := range []uint64{1, 511, 512, 513, 463} {
		if err := cp.Run(context.Background(), cpSys, slice); err != nil {
			t.Fatal(err)
		}
	}
	if g, w := cpSys.Bus.Cycles(), evSys.Bus.Cycles(); g != w {
		t.Fatalf("cycles: compiled=%d event=%d", g, w)
	}
	ee, ce := evAn.Report().TotalEnergy, cpAn.Report().TotalEnergy
	if math.Float64bits(ee) != math.Float64bits(ce) {
		t.Fatalf("energies diverge: event=%g compiled=%g", ee, ce)
	}
}
