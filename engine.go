package ahbpower

import (
	"context"

	"ahbpower/internal/engine"
)

// Batch run engine. A Scenario describes one self-contained simulation
// (system shape + workload + analyzer style + run length); a Runner
// executes batches of scenarios across a worker pool with results
// returned in input order, so parallel sweeps reproduce serial ones
// byte for byte. Grid expands a cartesian design-space sweep into a
// scenario list.
type (
	// Scenario is one self-contained simulation run.
	Scenario = engine.Scenario
	// Result is the outcome of one scenario.
	Result = engine.Result
	// Runner executes scenario batches over a fixed-size worker pool.
	Runner = engine.Runner
	// Grid describes a cartesian design-space sweep.
	Grid = engine.Grid
)

// NewRunner returns a runner with the given pool size (minimum 1).
func NewRunner(workers int) *Runner { return engine.NewRunner(workers) }

// DefaultRunner returns a runner sized to the machine.
func DefaultRunner() *Runner { return engine.DefaultRunner() }

// RunScenarios executes a batch with a machine-sized worker pool.
func RunScenarios(ctx context.Context, scenarios []Scenario) []Result {
	return engine.Run(ctx, scenarios)
}

// RunScenario executes a single scenario synchronously.
func RunScenario(ctx context.Context, sc Scenario) Result {
	return engine.RunOne(ctx, sc)
}

// FirstError returns the first scenario error in a batch, or nil.
func FirstError(results []Result) error { return engine.FirstError(results) }

// FirstViolation returns the first protocol violation across a batch, or
// nil when the runs were clean.
func FirstViolation(results []Result) error { return engine.FirstViolation(results) }
