package ahbpower

import (
	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/amba/apb"
	"ahbpower/internal/amba/asb"
	"ahbpower/internal/sim"
)

// Low-level AMBA building blocks, for systems that need more than the
// canned core.System topology: raw bus construction, extra slave types,
// the APB tier and the protocol monitor.
type (
	// Kernel is the discrete-event simulation kernel.
	Kernel = sim.Kernel
	// Clock is a free-running simulation clock.
	Clock = sim.Clock
	// MemorySlave is a word-addressable AHB memory slave.
	MemorySlave = ahb.MemorySlave
	// ErrorSlave responds ERROR to every transfer.
	ErrorSlave = ahb.ErrorSlave
	// RetrySlave issues RETRYs before accepting transfers.
	RetrySlave = ahb.RetrySlave
	// SplitSlave exercises the SPLIT protocol.
	SplitSlave = ahb.SplitSlave
	// Monitor performs on-line AHB protocol checking.
	Monitor = ahb.Monitor
	// CycleInfo is a settled per-cycle bus snapshot.
	CycleInfo = ahb.CycleInfo

	// APBConfig configures an APB segment.
	APBConfig = apb.Config
	// APBRegion maps an APB address range to a peripheral.
	APBRegion = apb.Region
	// APBBus is the APB signal fabric.
	APBBus = apb.Bus
	// Bridge converts AHB transfers into APB accesses.
	Bridge = apb.Bridge
	// RegisterBlock is an APB register-bank peripheral.
	RegisterBlock = apb.RegisterBlock
	// Timer is an APB free-running counter peripheral.
	Timer = apb.Timer
	// FifoSlave is an AHB stream peripheral with backpressure.
	FifoSlave = ahb.FifoSlave

	// ASBConfig configures an ASB (the older AMBA system bus) instance.
	ASBConfig = asb.Config
	// ASBBus is the ASB interconnect with its shared tri-state data bus.
	ASBBus = asb.Bus
	// ASBMaster is a script-driven ASB master.
	ASBMaster = asb.Master
	// ASBMemorySlave is a word-addressable ASB memory slave.
	ASBMemorySlave = asb.MemorySlave
	// ASBRegion maps an ASB address range to a slave.
	ASBRegion = asb.Region
	// ASBSequence is a run of ASB operations with the request held.
	ASBSequence = asb.Sequence
	// ASBOp is one ASB operation.
	ASBOp = asb.Op
)

// AHB transfer constants re-exported for script construction.
const (
	OpWrite = ahb.OpWrite
	OpRead  = ahb.OpRead
	OpIdle  = ahb.OpIdle

	BurstSingle = ahb.BurstSingle
	BurstIncr   = ahb.BurstIncr
	BurstIncr4  = ahb.BurstIncr4
	BurstWrap4  = ahb.BurstWrap4
	BurstIncr8  = ahb.BurstIncr8
	BurstWrap8  = ahb.BurstWrap8
	BurstIncr16 = ahb.BurstIncr16
	BurstWrap16 = ahb.BurstWrap16

	RespOkay  = ahb.RespOkay
	RespError = ahb.RespError
	RespRetry = ahb.RespRetry
	RespSplit = ahb.RespSplit

	PolicySticky     = ahb.PolicySticky
	PolicyFixed      = ahb.PolicyFixed
	PolicyRoundRobin = ahb.PolicyRoundRobin

	ASBOpWrite = asb.OpWrite
	ASBOpRead  = asb.OpRead
)

// NewKernel creates a fresh simulation kernel.
func NewKernel() *Kernel { return sim.NewKernel() }

// NewBus creates a raw AHB bus on a kernel.
func NewBus(k *Kernel, cfg BusConfig) (*Bus, error) { return ahb.New(k, cfg) }

// NewMaster attaches a script-driven master to a bus port.
func NewMaster(b *Bus, idx int) (*Master, error) { return ahb.NewMaster(b, idx) }

// NewMemorySlave attaches a memory slave with the given wait states.
func NewMemorySlave(b *Bus, idx, waits int) (*MemorySlave, error) {
	return ahb.NewMemorySlave(b, idx, waits)
}

// NewMonitor attaches an AHB protocol monitor.
func NewMonitor(b *Bus) *Monitor { return ahb.NewMonitor(b) }

// NewAPBBus creates an APB signal fabric.
func NewAPBBus(k *Kernel, cfg APBConfig) (*APBBus, error) { return apb.NewBus(k, cfg) }

// NewBridge attaches an AHB-to-APB bridge on an AHB slave port.
func NewBridge(ahbBus *Bus, idx int, apbBus *APBBus) (*Bridge, error) {
	return apb.NewBridge(ahbBus, idx, apbBus)
}

// NewRegisterBlock attaches an APB register bank.
func NewRegisterBlock(b *APBBus, sel int, base uint32, n int) (*RegisterBlock, error) {
	return apb.NewRegisterBlock(b, sel, base, n)
}

// NewTimer attaches an APB timer peripheral.
func NewTimer(b *APBBus, sel int, base uint32, clk *Clock) (*Timer, error) {
	return apb.NewTimer(b, sel, base, clk)
}

// NewFifoSlave attaches a stream FIFO slave to an AHB port.
func NewFifoSlave(b *Bus, idx, capacity, drainEvery int) (*FifoSlave, error) {
	return ahb.NewFifoSlave(b, idx, capacity, drainEvery)
}

// NewASBBus creates an ASB interconnect.
func NewASBBus(k *Kernel, cfg ASBConfig) (*ASBBus, error) { return asb.New(k, cfg) }

// NewASBMaster attaches a master to an ASB port.
func NewASBMaster(b *ASBBus, idx int) (*ASBMaster, error) { return asb.NewMaster(b, idx) }

// NewASBMemorySlave attaches a memory slave to an ASB port.
func NewASBMemorySlave(b *ASBBus, idx, waits int) (*ASBMemorySlave, error) {
	return asb.NewMemorySlave(b, idx, waits)
}
