// Package ahbpower is a system-level power-analysis library for the AMBA
// AHB on-chip bus, reproducing Caldari et al., "System-Level Power
// Analysis Methodology Applied to the AMBA AHB Bus" (DATE 2003).
//
// It bundles:
//
//   - a discrete-event simulation kernel with SystemC-like delta-cycle
//     semantics (internal/sim);
//   - a cycle-accurate AMBA AHB bus model — arbiter, decoder, M2S/S2M
//     multiplexers, script-driven masters, memory/error/retry/split
//     slaves — plus an APB tier behind a bridge (internal/amba);
//   - parametric dynamic-energy macromodels for the AHB sub-blocks and
//     the instruction-based power FSM of the paper (internal/power);
//   - a gate-level netlist substrate with structural generators and SOP
//     synthesis used to characterize and validate the macromodels
//     (internal/gate, internal/synth, internal/charact);
//   - experiment runners regenerating every table and figure of the
//     paper's evaluation (internal/experiments).
//
// The typical flow mirrors the paper: build a system, attach a power
// analyzer in one of the three integration styles, run, and read the
// instruction-energy report:
//
//	sys, _ := ahbpower.NewSystem(ahbpower.PaperSystem())
//	sys.LoadPaperWorkload(50000)
//	an, _ := ahbpower.Attach(sys, ahbpower.WithStyle(ahbpower.StyleGlobal))
//	sys.Run(50000)
//	fmt.Print(an.Report().FormatTable())
//
// Attach takes functional options (WithStyle, WithTech, WithModels,
// WithTrace, ...); AttachConfig remains the struct-literal form for
// callers that build an AnalyzerConfig programmatically. For
// time-resolved output, attach a streaming power-trace recorder
// (NewTrace + WithTrace) and export the waveform as CSV, JSON lines or
// analog VCD — see the "metrics" facade in metrics.go and
// examples/powertrace.
//
// Gate-level characterization is configured with CharacterizationConfig
// and run with Characterize; the positional FitBusModels form is
// deprecated and delegates to it.
package ahbpower

import (
	"io"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/charact"
	"ahbpower/internal/core"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/workload"
)

// Core system and analysis types.
type (
	// SystemConfig describes an AHB system under power analysis.
	SystemConfig = core.SystemConfig
	// System is a fully built simulation (kernel, bus, masters, slaves).
	System = core.System
	// AnalyzerConfig parameterizes the power analyzer.
	AnalyzerConfig = core.AnalyzerConfig
	// Analyzer is the instrumented power model attached to a system.
	Analyzer = core.Analyzer
	// Report is the outcome of one analyzed simulation.
	Report = core.Report
	// Style selects the power-model integration style (paper Fig. 1).
	Style = core.Style
	// Tech holds the technology constants of the energy models.
	Tech = power.Tech
	// Models bundles the four sub-block macromodels of one bus shape; a
	// serialized Models file is the reusable power model of the IP.
	Models = power.Models
)

// Bus-level types for custom systems.
type (
	// BusConfig configures a raw AHB bus instance.
	BusConfig = ahb.Config
	// Bus is the AHB interconnect.
	Bus = ahb.Bus
	// Master is a script-driven AHB master.
	Master = ahb.Master
	// Op is one master operation (write burst, read burst or idle).
	Op = ahb.Op
	// Sequence is a non-interruptible run of operations.
	Sequence = ahb.Sequence
	// Region maps an address range to a slave.
	Region = ahb.Region
	// WorkloadConfig parameterizes random testbench traffic.
	WorkloadConfig = workload.Config
	// Time is simulated time in picoseconds.
	Time = sim.Time
)

// Power-model integration styles (paper Fig. 1).
const (
	StyleGlobal  = core.StyleGlobal
	StyleLocal   = core.StyleLocal
	StylePrivate = core.StylePrivate
)

// Common time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// NewSystem builds a system from the configuration.
func NewSystem(cfg SystemConfig) (*System, error) { return core.NewSystem(cfg) }

// PaperSystem returns the paper's testbench configuration: two masters, a
// simple default master and three slaves on a 100 MHz AHB.
func PaperSystem() SystemConfig { return core.PaperSystem() }

// DefaultTech returns the calibrated default technology constants.
func DefaultTech() Tech { return power.DefaultTech() }

// FormatEnergy renders an energy in joules with a sensible SI prefix.
func FormatEnergy(j float64) string { return core.FormatEnergy(j) }

// FormatPower renders a power in watts with a sensible SI prefix.
func FormatPower(w float64) string { return core.FormatPower(w) }

// GenerateWorkload produces a master script from a workload configuration.
func GenerateWorkload(cfg WorkloadConfig) ([]Sequence, error) { return workload.Generate(cfg) }

// PaperWorkload returns the paper-testbench workload configuration for
// master m with the given number of WRITE-READ sequences.
func PaperWorkload(m, numSequences int) WorkloadConfig {
	return workload.PaperTestbench(m, numSequences)
}

// CharacterizationConfig parameterizes a gate-level bus
// characterization: bus shape, stimulus size, seed and technology. Zero
// values of DataWidth, Vectors and Tech pick sensible defaults.
type CharacterizationConfig = charact.Config

// Characterize characterizes the sub-blocks of a bus shape at gate level
// and returns a fitted, serializable model set (save with SaveModels,
// reuse with LoadModels and the WithModels attach option).
func Characterize(cfg CharacterizationConfig) (*Models, error) {
	return charact.Characterize(cfg)
}

// FitBusModels is the positional form of Characterize.
//
// Deprecated: use Characterize with a CharacterizationConfig.
func FitBusModels(numMasters, numSlaves, dataWidth, vectors int, seed int64, tech Tech) (*Models, error) {
	return charact.FitBusModels(numMasters, numSlaves, dataWidth, vectors, seed, tech)
}

// SaveModels writes a model set as JSON.
func SaveModels(w io.Writer, m *Models) error { return power.SaveModels(w, m) }

// LoadModels reads a model set written by SaveModels.
func LoadModels(r io.Reader) (*Models, error) { return power.LoadModels(r) }
