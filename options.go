package ahbpower

import (
	"ahbpower/internal/core"
)

// AttachOption customizes the power analyzer built by Attach. Options
// are applied in order over a zero AnalyzerConfig, so later options win.
type AttachOption func(*AnalyzerConfig)

// WithStyle selects the power-model integration style (paper Fig. 1).
// The default is StyleGlobal.
func WithStyle(s Style) AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.Style = s }
}

// WithTech supplies the technology constants of the energy models
// instead of DefaultTech.
func WithTech(t Tech) AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.Tech = t }
}

// WithModels supplies characterized macromodels (from Characterize or
// LoadModels) instead of the structural defaults — the IP-reuse flow of
// the paper's §2.
func WithModels(m *Models) AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.Models = m }
}

// WithTrace subscribes a streaming power-trace recorder (see NewTrace)
// to the analyzer's per-cycle sample stream. Use one Trace per run.
func WithTrace(rec *Trace) AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.Trace = rec }
}

// WithTraceWindow enables the report's built-in windowed power traces
// (Report.TraceTotal and friends, the paper's Figs. 3-5) with the given
// window duration in seconds. For streaming access, exporters and
// per-instruction series, use WithTrace instead.
func WithTraceWindow(seconds float64) AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.TraceWindow = seconds }
}

// WithActivity keeps per-signal switching statistics (the paper's
// Activity object) at extra memory and time cost.
func WithActivity() AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.RecordActivity = true }
}

// WithDPM enables the dynamic-power-management savings estimator.
func WithDPM(dpm DPMConfig) AttachOption {
	return func(cfg *AnalyzerConfig) { cfg.DPM = &dpm }
}

// Attach hooks a power analyzer into a system; call before Run. With no
// options it attaches a global-style analyzer with default technology:
//
//	an, err := ahbpower.Attach(sys,
//	    ahbpower.WithStyle(ahbpower.StylePrivate),
//	    ahbpower.WithTrace(rec))
func Attach(sys *System, opts ...AttachOption) (*Analyzer, error) {
	var cfg AnalyzerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.Attach(sys, cfg)
}

// AttachConfig hooks a power analyzer into a system from an explicit
// configuration struct; it is the non-options form of Attach.
func AttachConfig(sys *System, cfg AnalyzerConfig) (*Analyzer, error) {
	return core.Attach(sys, cfg)
}
