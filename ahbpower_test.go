package ahbpower_test

import (
	"strings"
	"testing"

	"ahbpower"
)

func TestPublicQuickstartFlow(t *testing.T) {
	sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(2000); err != nil {
		t.Fatal(err)
	}
	an, err := ahbpower.Attach(sys, ahbpower.WithStyle(ahbpower.StyleGlobal))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2000); err != nil {
		t.Fatal(err)
	}
	r := an.Report()
	if r.TotalEnergy <= 0 || r.Cycles != 2000 {
		t.Errorf("report: energy=%g cycles=%d", r.TotalEnergy, r.Cycles)
	}
	if !strings.Contains(r.FormatTable(), "WRITE_READ") {
		t.Error("table must contain WRITE_READ")
	}
}

func TestPublicCustomBusFlow(t *testing.T) {
	k := ahbpower.NewKernel()
	bus, err := ahbpower.NewBus(k, ahbpower.BusConfig{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []ahbpower.Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * ahbpower.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := ahbpower.NewMonitor(bus)
	m, err := ahbpower.NewMaster(bus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepResults(true)
	sl, err := ahbpower.NewMemorySlave(bus, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Enqueue(ahbpower.Sequence{Ops: []ahbpower.Op{
		{Kind: ahbpower.OpWrite, Addr: 0x20, Data: []uint32{0x1234}},
		{Kind: ahbpower.OpRead, Addr: 0x20},
	}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	if sl.Peek(0x20) != 0x1234 {
		t.Errorf("memory=%#x", sl.Peek(0x20))
	}
	if len(mon.Errors()) != 0 {
		t.Errorf("violations: %v", mon.Errors())
	}
	res := m.Results()
	if len(res) != 2 || res[1].Data != 0x1234 {
		t.Errorf("results: %+v", res)
	}
}

func TestPublicWorkloadGeneration(t *testing.T) {
	cfg := ahbpower.PaperWorkload(0, 5)
	seqs, err := ahbpower.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 5 {
		t.Errorf("sequences=%d", len(seqs))
	}
}

func TestPublicTechDefaults(t *testing.T) {
	tech := ahbpower.DefaultTech()
	if tech.VDD != 1.8 || tech.CPD <= 0 || tech.CO <= 0 {
		t.Errorf("tech=%+v", tech)
	}
}

func TestPublicAPBFlow(t *testing.T) {
	k := ahbpower.NewKernel()
	bus, err := ahbpower.NewBus(k, ahbpower.BusConfig{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []ahbpower.Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * ahbpower.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	apbBus, err := ahbpower.NewAPBBus(k, ahbpower.APBConfig{
		NumSel:  1,
		Regions: []ahbpower.APBRegion{{Start: 0, Size: 0x100, Sel: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ahbpower.NewBridge(bus, 0, apbBus); err != nil {
		t.Fatal(err)
	}
	regs, err := ahbpower.NewRegisterBlock(apbBus, 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	regs.AttachClock(bus.Clk)
	m, err := ahbpower.NewMaster(bus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Enqueue(ahbpower.Sequence{Ops: []ahbpower.Op{
		{Kind: ahbpower.OpWrite, Addr: 0x8, Data: []uint32{0x55}},
	}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	if regs.Peek(2) != 0x55 {
		t.Errorf("reg[2]=%#x", regs.Peek(2))
	}
}

func TestPublicASBFlow(t *testing.T) {
	k := ahbpower.NewKernel()
	bus, err := ahbpower.NewASBBus(k, ahbpower.ASBConfig{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []ahbpower.ASBRegion{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * ahbpower.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ahbpower.NewASBMaster(bus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepResults(true)
	sl, err := ahbpower.NewASBMemorySlave(bus, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Enqueue(ahbpower.ASBSequence{Ops: []ahbpower.ASBOp{
		{Kind: ahbpower.ASBOpWrite, Addr: 0x10, Data: []uint32{0x99}},
		{Kind: ahbpower.ASBOpRead, Addr: 0x10},
	}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	if sl.Peek(0x10) != 0x99 {
		t.Errorf("asb mem=%#x", sl.Peek(0x10))
	}
	res := m.Results()
	if len(res) != 2 || res[1].Data != 0x99 {
		t.Errorf("asb results=%+v", res)
	}
}

func TestPublicFifoSlave(t *testing.T) {
	k := ahbpower.NewKernel()
	bus, err := ahbpower.NewBus(k, ahbpower.BusConfig{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []ahbpower.Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * ahbpower.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ahbpower.NewMaster(bus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepResults(true)
	f, err := ahbpower.NewFifoSlave(bus, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Enqueue(ahbpower.Sequence{Ops: []ahbpower.Op{
		{Kind: ahbpower.OpWrite, Addr: 0, Data: []uint32{5}},
		{Kind: ahbpower.OpRead, Addr: 0},
	}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	if f.Pushes != 1 || f.Pops != 1 {
		t.Errorf("fifo pushes=%d pops=%d", f.Pushes, f.Pops)
	}
	if m.Results()[1].Data != 5 {
		t.Errorf("read=%d", m.Results()[1].Data)
	}
}

func TestPublicModelRoundTrip(t *testing.T) {
	tech := ahbpower.DefaultTech()
	models, err := ahbpower.FitBusModels(2, 2, 32, 500, 3, tech)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ahbpower.SaveModels(&sb, models); err != nil {
		t.Fatal(err)
	}
	loaded, err := ahbpower.LoadModels(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dec.Energy(1) != models.Dec.Energy(1) {
		t.Error("model round trip lost coefficients")
	}
	// And attach them to a real analysis.
	sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(500); err != nil {
		t.Fatal(err)
	}
	// Models for a 2x2 system attached to a 3x3 bus still validate
	// structurally (dimension mismatch is the caller's responsibility),
	// so build matching ones instead.
	fitted, err := ahbpower.FitBusModels(3, 3, 32, 500, 4, tech)
	if err != nil {
		t.Fatal(err)
	}
	an, err := ahbpower.Attach(sys, ahbpower.WithStyle(ahbpower.StyleGlobal), ahbpower.WithModels(fitted))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(500); err != nil {
		t.Fatal(err)
	}
	if an.Report().TotalEnergy <= 0 {
		t.Error("fitted-model analysis produced no energy")
	}
}
